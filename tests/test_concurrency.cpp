// Concurrency stress tests for the serving stack (DESIGN.md §9): the
// sqldb reader-writer engine, the generator's striped profile cache, and
// KickstartServer::handle_many. These are the tests the build-tsan CI job
// runs under ThreadSanitizer — they are written to provoke races (many
// threads, small tables, tight loops), not to measure throughput.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "kickstart/defaults.hpp"
#include "kickstart/generator.hpp"
#include "kickstart/server.hpp"
#include "rpm/synth.hpp"
#include "services/generators.hpp"
#include "services/incremental.hpp"
#include "services/manager.hpp"
#include "sqldb/engine.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/threadpool.hpp"
#include "vfs/filesystem.hpp"

namespace rocks {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 1000;

/// 8 threads × 1k ops against one Database: six readers re-running indexed
/// and scanning SELECTs while two writers INSERT disjoint rows and UPDATE
/// their own counter row. Asserts no lost updates (every increment lands)
/// and that readers only ever observe well-formed rows.
TEST(DatabaseConcurrency, ConcurrentSelectInsertUpdate) {
  sqldb::Database db;
  db.execute("CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, rack INT)");
  db.execute("CREATE INDEX nodes_name ON nodes (name)");
  db.execute("INSERT INTO nodes (name, rack) VALUES ('seed-0', 0), ('seed-1', 0)");
  // One counter row per writer thread; each writer increments only its own.
  db.execute("INSERT INTO nodes (name, rack) VALUES ('counter-6', 0), ('counter-7', 0)");

  std::atomic<std::size_t> malformed{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &malformed, t] {
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        if (t >= 6) {
          // Writers: grow the table and bump a private counter.
          db.execute(strings::cat("INSERT INTO nodes (name, rack) VALUES ('w", t, "-", op,
                                  "', ", t, ")"));
          db.execute(strings::cat("UPDATE nodes SET rack = rack + 1 WHERE name = 'counter-",
                                  t, "'"));
        } else {
          // Readers: one indexed probe, one scan; every hit must be whole.
          const auto probe = db.execute("SELECT name, rack FROM nodes WHERE name = 'seed-0'");
          if (probe.row_count() != 1 || probe.at(0, 0).to_string() != "seed-0")
            malformed.fetch_add(1);
          const auto scan = db.execute("SELECT name FROM nodes WHERE rack >= 0");
          if (scan.row_count() < 4) malformed.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(malformed.load(), 0u);
  // No lost inserts: 4 seed rows + 2 writers × 1000.
  const auto count = db.execute("SELECT id FROM nodes");
  EXPECT_EQ(count.row_count(), 4u + 2u * kOpsPerThread);
  // No lost updates: each counter saw exactly its writer's 1000 increments.
  for (int t = 6; t <= 7; ++t) {
    const auto counter = db.execute(
        strings::cat("SELECT rack FROM nodes WHERE name = 'counter-", t, "'"));
    ASSERT_EQ(counter.row_count(), 1u);
    EXPECT_EQ(counter.at(0, 0).to_string(), "1000");
  }
  // Under MVCC the read path takes no lock at all: every SELECT pinned a
  // read view instead (6 reader threads × 2 each op, plus the 3
  // verification SELECTs above); the 4 setup statements and 2 writers × 2
  // DML each op ran exclusive.
  EXPECT_EQ(db.shared_lock_acquisitions(), 0u);
  EXPECT_EQ(db.read_views_opened(), 6u * kOpsPerThread * 2 + 3);
  EXPECT_EQ(db.exclusive_lock_acquisitions(), 2u * kOpsPerThread * 2 + 4);
}

/// MVCC snapshot isolation under a writer storm: 8 writer threads churning
/// INSERT/UPDATE/DELETE while 8 reader threads each pin a read view and
/// re-run the same aggregate through it. A pinned view must return the
/// *identical* result however many commits land while it is held — any
/// drift means a version became visible (or was reclaimed) inside a live
/// snapshot.
TEST(DatabaseConcurrency, PinnedReadViewIsStableUnderWriterStorm) {
  sqldb::Database db;
  db.execute("CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, rack INT)");
  db.execute("CREATE INDEX nodes_name ON nodes (name)");
  for (int i = 0; i < 16; ++i)
    db.execute(strings::cat("INSERT INTO nodes (name, rack) VALUES ('seed-", i, "', 0)"));

  constexpr std::size_t kStormOps = 300;
  std::atomic<std::size_t> unstable{0};
  std::vector<std::thread> writers;
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&db, t] {
      for (std::size_t op = 0; op < kStormOps; ++op) {
        db.execute(strings::cat("INSERT INTO nodes (name, rack) VALUES ('w", t, "-", op,
                                "', ", t + 1, ")"));
        db.execute(strings::cat("UPDATE nodes SET rack = rack + 1 WHERE name = 'seed-", t,
                                "'"));
        db.execute(strings::cat("DELETE FROM nodes WHERE name = 'w", t, "-", op, "'"));
      }
    });
    readers.emplace_back([&db, &unstable] {
      for (std::size_t op = 0; op < kStormOps; ++op) {
        sqldb::ReadView view = db.read_view();
        const auto first = view.execute("SELECT name, rack FROM nodes ORDER BY id");
        // Indexed probe and scan through the same view: same snapshot.
        const auto probe = view.execute("SELECT rack FROM nodes WHERE name = 'seed-3'");
        const auto second = view.execute("SELECT name, rack FROM nodes ORDER BY id");
        if (first.render() != second.render()) unstable.fetch_add(1);
        if (probe.row_count() != 1) unstable.fetch_add(1);
      }
    });
  }
  for (auto& thread : writers) thread.join();
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(unstable.load(), 0u);
  // Every insert was matched by a delete: the 16 seeds survive.
  EXPECT_EQ(db.execute("SELECT id FROM nodes").row_count(), 16u);
  // Each seed row took exactly its writer's increments.
  for (std::size_t t = 0; t < kThreads; ++t) {
    const auto rack =
        db.execute(strings::cat("SELECT rack FROM nodes WHERE name = 'seed-", t, "'"));
    ASSERT_EQ(rack.row_count(), 1u);
    EXPECT_EQ(rack.at(0, 0).to_string(), strings::cat(kStormOps));
  }
}

/// Zero-pause checkpoints racing kickstart generation: one thread
/// snapshotting a durable store in a tight loop, readers resolving
/// kickstarts (each resolve pins a view for its two lookups), a writer
/// integrating and retiring transient nodes. Readers must never block,
/// fail, or observe a half-registered node; the final image must recover
/// byte-identically.
TEST(DatabaseConcurrency, GenerateRacingCheckpoint) {
  rpm::SynthDistro distro = rpm::make_redhat_release();
  const kickstart::DefaultConfiguration config = kickstart::make_default_configuration(distro);
  vfs::FileSystem disk;
  sqldb::Database db;
  db.open_durable(disk, "/state/db");
  kickstart::ensure_cluster_schema(db);
  kickstart::insert_node_row(db, Mac(0x00508BE00000ULL).to_string(), "compute-0-0", 2, 0, 0,
                             Ipv4(10, 255, 255, 254).to_string());
  kickstart::KickstartServer server(db, config.files, config.graph, Ipv4(10, 1, 1, 1),
                                    "http://10.1.1.1/install/rocks-dist", &distro.repo);
  const std::string expected = server.handle_request(Ipv4(10, 255, 255, 254));

  std::atomic<std::size_t> failures{0};
  std::atomic<bool> done{false};
  std::thread checkpointer([&db, &done] {
    while (!done.load(std::memory_order_relaxed)) (void)db.snapshot();
  });
  std::thread writer([&db, &done] {
    for (std::size_t op = 0; op < kOpsPerThread / 4; ++op) {
      kickstart::insert_node_row(db, Mac(0x00A0C9000000ULL + op).to_string(),
                                 strings::cat("transient-1-", op), 2, 1,
                                 static_cast<int>(op),
                                 Ipv4(Ipv4(10, 250, 0, 1).value() +
                                      static_cast<std::uint32_t>(op)).to_string());
      db.execute(strings::cat("DELETE FROM nodes WHERE name = 'transient-1-", op, "'"));
    }
    done.store(true, std::memory_order_relaxed);
  });
  std::vector<std::thread> resolvers;
  for (std::size_t t = 0; t < 4; ++t) {
    resolvers.emplace_back([&server, &expected, &failures] {
      for (std::size_t op = 0; op < kOpsPerThread / 4; ++op) {
        try {
          if (server.handle_request(Ipv4(10, 255, 255, 254)) != expected)
            failures.fetch_add(1);
        } catch (const Error&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : resolvers) thread.join();
  writer.join();
  checkpointer.join();
  EXPECT_EQ(failures.load(), 0u);

  db.wal_flush();
  const std::string final_state = db.dump_state();
  sqldb::Database recovered;
  recovered.open_durable(disk, "/state/db");
  EXPECT_EQ(recovered.dump_state(), final_state);
}

/// Epoch-based reclamation under churn: writers supersede versions at full
/// tilt while readers hold overlapping pinned views. While views are live
/// the horizon protects what they can see; once they drain, reclaim()
/// returns the store to one live version per row — superseded versions and
/// dead chains must not accumulate.
TEST(DatabaseConcurrency, VersionReclamationUnderChurn) {
  sqldb::Database db;
  db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, x INT)");
  for (int i = 0; i < 8; ++i) db.execute("INSERT INTO t (x) VALUES (0)");

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      for (std::size_t op = 0; op < kOpsPerThread / 2; ++op) {
        if (t >= 6) {
          db.execute(strings::cat("UPDATE t SET x = x + 1 WHERE id = ", (op % 8) + 1));
        } else {
          // Overlapping pinned views gate the reclamation horizon.
          sqldb::ReadView view = db.read_view();
          (void)view.execute("SELECT x FROM t ORDER BY id");
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Views drained: two passes (ts horizon, then limbo/registration drain)
  // must collapse every chain back to its single live version.
  (void)db.reclaim();
  (void)db.reclaim();
  const sqldb::MvccStatus status = db.mvcc_status();
  EXPECT_EQ(status.active_read_views, 0u);
  EXPECT_GT(status.versions_reclaimed, 2u * (kOpsPerThread / 2) / 2);
  EXPECT_EQ(status.versions_live, 8u);
  EXPECT_EQ(status.retired_pending, 0u);
  EXPECT_EQ(status.limbo_versions, 0u);
  EXPECT_EQ(status.max_chain, 1u);
  // 2 writers × 500 updates all landed.
  const auto sum = db.execute("SELECT x FROM t ORDER BY id");
  std::int64_t total = 0;
  for (const auto& row : sum.rows) total += row[0].as_int();
  EXPECT_EQ(total, static_cast<std::int64_t>(2 * (kOpsPerThread / 2)));
}

TEST(DatabaseConcurrency, PreparedStatementCacheSharedAcrossThreads) {
  sqldb::Database db;
  db.execute("CREATE TABLE t (x INT)");
  db.execute("INSERT INTO t (x) VALUES (1)");
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db] {
      for (std::size_t op = 0; op < kOpsPerThread; ++op)
        (void)db.execute("SELECT x FROM t WHERE x = 1");
    });
  }
  for (auto& thread : threads) thread.join();
  // All threads hit the same cache entry; racing first-misses may parse the
  // same text more than once, but the cache holds exactly one entry for it.
  EXPECT_GE(db.statement_cache_hits(), kThreads * kOpsPerThread - kThreads);
  EXPECT_EQ(db.statement_cache_size(), 3u);
}

/// Concurrent generate() against concurrent invalidate_profiles(): readers
/// must always get a profile that is byte-identical to a cold build
/// (snapshot semantics — a flush never mutates a profile mid-render).
TEST(GeneratorConcurrency, GenerateRacingInvalidate) {
  const rpm::SynthDistro distro = rpm::make_redhat_release();
  const kickstart::DefaultConfiguration config = kickstart::make_default_configuration(distro);
  const kickstart::Generator generator(config.files, config.graph, &distro.repo);

  const auto config_for = [](const std::string& appliance) {
    kickstart::NodeConfig nc;
    nc.hostname = appliance + "-0-0";
    nc.appliance = appliance;
    nc.ip = Ipv4(10, 255, 255, 254);
    nc.frontend_ip = Ipv4(10, 1, 1, 1);
    nc.distribution_url = "http://10.1.1.1/install/rocks-dist";
    return nc;
  };
  const std::vector<std::string> appliances = {"compute", "frontend", "nfs", "web"};
  // Cold references, rendered before any concurrency.
  std::vector<std::string> expected;
  for (const auto& appliance : appliances)
    expected.push_back(generator.generate_text(config_for(appliance)));

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        if (t >= 6) {
          generator.invalidate_profiles();
        } else {
          const std::size_t which = (t + op) % appliances.size();
          if (generator.generate_text(config_for(appliances[which])) != expected[which])
            mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // The invalidators forced real rebuilds throughout.
  EXPECT_GT(generator.profile_cache_misses(), appliances.size());
}

/// The change bus under fire: two writer threads committing (each commit
/// records into the journal and dispatches notifications), three threads
/// churning subscriptions and cursor reads, and one flusher thread driving
/// a dirty-tracked ServiceManager. TSan verifies the journal's leaf
/// mutexes, the shared_ptr callback snapshots, and the per-service atomic
/// dirty flags; the final assertions verify nothing was lost.
TEST(DatabaseConcurrency, JournalSubscribeRacingCommits) {
  sqldb::Database db;
  db.execute("CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)");

  services::ServiceManager manager;
  vfs::FileSystem fs;
  manager.register_service("census", "/etc/census",
                           [](sqldb::Database& db) {
                             return strings::cat(db.execute("SELECT id FROM nodes").row_count(),
                                                 " nodes\n");
                           },
                           {"nodes"});
  manager.attach(db.journal());

  std::atomic<std::uint64_t> callbacks{0};
  constexpr std::size_t kWriters = 2;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t >= kThreads - kWriters) {
        // Writers: every INSERT journals one record and notifies once.
        for (std::size_t op = 0; op < kOpsPerThread; ++op)
          db.execute(strings::cat("INSERT INTO nodes (name) VALUES ('w", t, "-", op, "')"));
      } else if (t == 0) {
        // Flusher: regenerate whenever the bus marked the service dirty.
        // (One flushing thread — regenerate() is not re-entrant.)
        for (std::size_t op = 0; op < kOpsPerThread / 10; ++op)
          (void)manager.regenerate(db, fs);
      } else {
        // Subscription churn racing the writers' notification snapshots.
        for (std::size_t op = 0; op < kOpsPerThread / 10; ++op) {
          const std::size_t id =
              db.subscribe("nodes", [&callbacks](std::string_view, std::uint64_t) {
                callbacks.fetch_add(1, std::memory_order_relaxed);
              });
          (void)db.since("nodes", db.revision("nodes") / 2);
          db.unsubscribe(id);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Every commit journaled exactly one record (CREATE TABLE only truncates).
  EXPECT_EQ(db.journal().records_written(), kWriters * kOpsPerThread);
  EXPECT_EQ(db.revision("nodes"), 1 + kWriters * kOpsPerThread);
  // A final flush settles the census at the true row count.
  (void)manager.regenerate(db, fs);
  EXPECT_EQ(fs.read_file("/etc/census"), strings::cat(kWriters * kOpsPerThread, " nodes\n"));
}

/// Bounded-changelog overflow under concurrent commits: writers register
/// nodes fast enough to blow past a tiny journal capacity while a renderer
/// keeps re-rendering the hosts report through its incremental path. Every
/// overflow makes since() report truncated, which must force a full rebuild
/// — and every render, overflowed or not, must be byte-identical to the
/// from-scratch generator run at the same instant (via a pinned view there
/// is no such instant from the outside, so the renderer thread checks line
/// integrity and the final quiesced render checks bytes).
TEST(DatabaseConcurrency, JournalOverflowForcesIncrementalRebuild) {
  sqldb::Database db;
  kickstart::ensure_cluster_schema(db);
  kickstart::insert_node_row(db, Mac(0x00508BE00000ULL).to_string(), "frontend-0", 1, 0, 0,
                             Ipv4(10, 1, 1, 1).to_string());
  // Capacity far below the commit volume: truncation is guaranteed, not
  // incidental.
  db.journal().set_capacity(8);

  services::IncrementalReport report(services::hosts_report_spec());
  std::atomic<std::size_t> malformed{0};
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kRows = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&db, t] {
      for (std::size_t op = 0; op < kRows; ++op) {
        const std::size_t n = t * kRows + op;
        kickstart::insert_node_row(
            db, Mac(0x00A0C9000000ULL + n).to_string(),
            strings::cat("compute-", t, "-", op), 2, static_cast<int>(t),
            static_cast<int>(op),
            Ipv4(Ipv4(10, 254, 0, 1).value() + static_cast<std::uint32_t>(n)).to_string());
      }
    });
  }
  threads.emplace_back([&db, &report, &malformed] {
    for (std::size_t op = 0; op < kRows; ++op) {
      // Each render sees *some* committed prefix; every emitted line must be
      // whole (hostname and dotted quad on one line) even when the render
      // straddled a truncation.
      const std::string rendered = report.render(db);
      std::size_t begin = 0;
      while (begin < rendered.size()) {
        std::size_t end = rendered.find('\n', begin);
        if (end == std::string::npos) end = rendered.size();
        const std::string_view line(rendered.data() + begin, end - begin);
        if (!line.empty() && line[0] != '#' &&
            (line.find('\t') == std::string_view::npos ||
             line.find('.') == std::string_view::npos))
          malformed.fetch_add(1);
        begin = end + 1;
      }
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(malformed.load(), 0u);

  // The journal overflowed: a cursor from before the floor is told to
  // rescan rather than handed a gapped delta.
  const auto stale = db.since("nodes", 1);
  EXPECT_TRUE(stale.truncated);
  EXPECT_GT(stale.floor, 1u);

  // Now overflow the window *between* two renders (the race above keeps the
  // renderer's cursor close; here we guarantee it is left behind): the next
  // render must detect truncation, full-rebuild, and still match the
  // from-scratch generator byte for byte.
  (void)report.render(db);  // catch the cursor up
  const std::uint64_t rebuilds_before = report.full_rebuilds();
  for (std::size_t n = 0; n < 16; ++n)
    kickstart::insert_node_row(
        db, Mac(0x00E0810000000ULL + n).to_string(), strings::cat("late-9-", n), 2, 9,
        static_cast<int>(n),
        Ipv4(Ipv4(10, 253, 0, 1).value() + static_cast<std::uint32_t>(n)).to_string());
  EXPECT_EQ(report.render(db), services::generate_hosts(db));
  EXPECT_EQ(report.full_rebuilds(), rebuilds_before + 1);
  // And once back inside the window, deltas resume: one more insert must
  // apply incrementally, not rebuild.
  kickstart::insert_node_row(db, Mac(0x00E0810000100ULL).to_string(), "late-9-16", 2, 9, 16,
                             Ipv4(10, 253, 0, 100).to_string());
  EXPECT_EQ(report.render(db), services::generate_hosts(db));
  EXPECT_EQ(report.full_rebuilds(), rebuilds_before + 1);
  EXPECT_EQ(db.execute("SELECT id FROM nodes").row_count(), 18u + kWriters * kRows);
}

TEST(ServerConcurrency, HandleManyServesWholeBatch) {
  rpm::SynthDistro distro = rpm::make_redhat_release();
  const kickstart::DefaultConfiguration config = kickstart::make_default_configuration(distro);
  sqldb::Database db;
  kickstart::ensure_cluster_schema(db);
  constexpr std::size_t kNodes = 128;
  std::vector<Ipv4> ips;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const Ipv4 ip(Ipv4(10, 255, 255, 254).value() - static_cast<std::uint32_t>(i));
    kickstart::insert_node_row(db, Mac(0x00508BE00000ULL + i).to_string(),
                               strings::cat("compute-0-", i), 2, 0, static_cast<int>(i),
                               ip.to_string());
    ips.push_back(ip);
  }
  // One ringer that cannot resolve: the batch must still serve the rest.
  ips.push_back(Ipv4(10, 9, 9, 9));

  kickstart::KickstartServer server(db, config.files, config.graph, Ipv4(10, 1, 1, 1),
                                    "http://10.1.1.1/install/rocks-dist", &distro.repo);
  const std::string expected = server.handle_request(ips[0]);

  support::ThreadPool pool(8);
  const auto report = server.handle_many(pool, ips);
  EXPECT_EQ(report.served, kNodes);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_FALSE(report.errors.back().empty());
  EXPECT_EQ(report.results[0], expected);
  // Every served kickstart localizes its own hostname, off a shared
  // profile (the header uses DHCP, so the IP itself never appears).
  for (std::size_t i = 0; i < kNodes; ++i)
    EXPECT_NE(report.results[i].find(strings::cat("compute-0-", i)), std::string::npos) << i;
  // Simulated cost model: ceil(129/8) = 17 rounds.
  EXPECT_DOUBLE_EQ(report.simulated_seconds,
                   17 * kickstart::KickstartServer::kSimulatedRequestSeconds);
}

}  // namespace
}  // namespace rocks
