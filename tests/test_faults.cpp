// Chaos tests: the fault-injection subsystem and the hardened install
// pipeline. Every scenario drives real faults — lost DHCP broadcasts,
// kickstart CGI outages, install-server crashes, mid-download connection
// resets, power flaps — through a live cluster and asserts the paper's core
// claim under duress: every node is driven back to a known state (kRunning
// with an identical software fingerprint), or is cleanly escalated through
// the Section 4 recovery ladder.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "monitor/recovery.hpp"
#include "netsim/fault.hpp"
#include "support/strings.hpp"

namespace rocks::cluster {
namespace {

ClusterConfig small_config() {
  ClusterConfig config;
  config.synth.filler_packages = 50;
  return config;
}

std::unique_ptr<Cluster> integrated_cluster(int nodes, ClusterConfig config = small_config()) {
  auto cluster = std::make_unique<Cluster>(std::move(config));
  for (int i = 0; i < nodes; ++i) cluster->add_node();
  cluster->integrate_all();
  return cluster;
}

// --- zero-cost happy path ----------------------------------------------------

TEST(FaultPipeline, ArmedButEmptyPlanLeavesCalibrationUntouched) {
  auto cluster = integrated_cluster(1);
  cluster->arm_faults({});  // injector wired everywhere, nothing planned
  Node* node = cluster->node("compute-0-0");
  node->shoot();
  cluster->run_until_stable();
  // Table I single-node Myrinet reinstall: 10.3 min = 618 s, unchanged.
  EXPECT_NEAR(node->last_install_duration(), 618.0, 5.0);
  EXPECT_EQ(node->install_count(), 2);
  EXPECT_EQ(node->download_retries(), 0u);
  EXPECT_EQ(node->watchdog_fires(), 0u);
}

// --- DHCP faults -------------------------------------------------------------

TEST(FaultPipeline, DhcpBlackoutDelaysButConverges) {
  auto cluster = integrated_cluster(1);
  Node* node = cluster->node("compute-0-0");
  netsim::FaultPlan plan;
  // The installer's DISCOVER lands at t+60; every broadcast before t+120 is
  // lost on the wire (switch outage).
  plan.dhcp_blackouts = {{0.0, 120.0}};
  auto& faults = cluster->arm_faults(plan);
  node->shoot();
  cluster->run_until_stable();
  EXPECT_TRUE(node->is_running());
  EXPECT_EQ(node->install_count(), 2);
  EXPECT_GT(faults.stats().discovers_dropped, 0u);
  // The blackout cost real time, but nothing near a watchdog escalation.
  EXPECT_GT(node->last_install_duration(), 618.0 + 30.0);
  EXPECT_EQ(node->watchdog_fires(), 0u);
  // Lost broadcasts never reached dhcpd: no phantom syslog traffic.
  EXPECT_EQ(cluster->frontend().dhcp().unanswered_count(), 1u);  // insert-ethers only
}

TEST(FaultPipeline, RandomDhcpLossConverges) {
  auto cluster = integrated_cluster(4);
  netsim::FaultPlan plan;
  plan.dhcp_loss = 0.5;
  auto& faults = cluster->arm_faults(plan);
  for (Node* node : cluster->nodes()) node->shoot();
  cluster->run_until_stable();
  for (Node* node : cluster->nodes()) {
    EXPECT_TRUE(node->is_running()) << node->hostname();
    EXPECT_EQ(node->install_count(), 2) << node->hostname();
  }
  EXPECT_GT(faults.stats().discovers_dropped, 0u);
  EXPECT_TRUE(cluster->consistent());
}

// --- kickstart CGI outages ---------------------------------------------------

TEST(FaultPipeline, KickstartOutageRetriedWithBackoff) {
  auto cluster = integrated_cluster(1);
  Node* node = cluster->node("compute-0-0");
  netsim::FaultPlan plan;
  // The kickstart request fires at t+70; the CGI refuses until t+200.
  plan.kickstart_outages = {{60.0, 200.0}};
  auto& faults = cluster->arm_faults(plan);
  node->shoot();
  cluster->run_until_stable();
  EXPECT_TRUE(node->is_running());
  EXPECT_GT(faults.stats().kickstart_refusals, 1u) << "expected backoff retries";
  EXPECT_GT(cluster->frontend().kickstart_server().requests_refused(), 1u);
  // ~130 s of outage, minus backoff overshoot; well under a watchdog fire.
  EXPECT_GT(node->last_install_duration(), 618.0 + 100.0);
  EXPECT_LT(node->last_install_duration(), 618.0 + 400.0);
}

// --- install server crashes and resets --------------------------------------

TEST(FaultPipeline, ReplicaCrashFailsOverToSurvivor) {
  ClusterConfig config = small_config();
  config.frontend.http_servers = 2;
  auto cluster = integrated_cluster(4, std::move(config));
  netsim::FaultPlan plan;
  plan.http_crashes = {{200.0, 0, 0.0}};  // replica 0 dies for good
  auto& faults = cluster->arm_faults(plan);
  for (Node* node : cluster->nodes()) node->shoot();
  cluster->run_until_stable();

  EXPECT_EQ(faults.stats().http_crashes, 1u);
  EXPECT_GT(faults.stats().flows_killed, 0u);
  EXPECT_FALSE(cluster->frontend().http().replica_up(0));
  std::uint64_t retries = 0;
  for (Node* node : cluster->nodes()) {
    EXPECT_TRUE(node->is_running()) << node->hostname();
    retries += node->download_retries();
  }
  EXPECT_GT(retries, 0u) << "killed flows must have been re-requested";
  EXPECT_TRUE(cluster->consistent());
  // Every re-requested byte came off the surviving replica.
  EXPECT_GT(cluster->frontend().http().server(1).stats().bytes_served,
            cluster->frontend().http().server(0).stats().bytes_served);
}

TEST(FaultPipeline, SoleServerCrashThenRestartResumesInstalls) {
  auto cluster = integrated_cluster(2);
  netsim::FaultPlan plan;
  plan.http_crashes = {{150.0, 0, 120.0}};  // down 120 s, then back
  auto& faults = cluster->arm_faults(plan);
  for (Node* node : cluster->nodes()) node->shoot();
  cluster->run_until_stable();

  EXPECT_EQ(faults.stats().http_crashes, 1u);
  EXPECT_EQ(faults.stats().http_restarts, 1u);
  EXPECT_TRUE(cluster->frontend().http().replica_up(0));
  for (Node* node : cluster->nodes()) {
    EXPECT_TRUE(node->is_running()) << node->hostname();
    EXPECT_GT(node->download_retries(), 0u) << node->hostname();
  }
  EXPECT_TRUE(cluster->consistent());
}

TEST(FaultPipeline, MidDownloadFlowKillResumesRemainingBytes) {
  auto cluster = integrated_cluster(1);
  Node* node = cluster->node("compute-0-0");
  netsim::FaultPlan plan;
  plan.flow_kills = {{200.0, 0}};  // connection reset ~90 s into the download
  auto& faults = cluster->arm_faults(plan);
  node->shoot();
  cluster->run_until_stable();

  EXPECT_EQ(faults.stats().flows_killed, 1u);
  EXPECT_TRUE(node->is_running());
  EXPECT_EQ(node->download_retries(), 1u);
  // The resume requested only the missing bytes: the install is a few
  // seconds late (retry base 5 s), not a from-scratch download late.
  EXPECT_GT(node->last_install_duration(), 618.0);
  EXPECT_LT(node->last_install_duration(), 618.0 + 60.0);
}

TEST(FaultPipeline, DownloadRetryBudgetExhaustionFailsNodeThenSweepRecovers) {
  ClusterConfig config = small_config();
  config.timings.download_retry_budget = 2;
  auto cluster = integrated_cluster(1, std::move(config));
  Node* node = cluster->node("compute-0-0");
  netsim::FaultPlan plan;
  // Three resets against a budget of two: the third exhausts it.
  plan.flow_kills = {{150.0, 0}, {200.0, 0}, {260.0, 0}};
  cluster->arm_faults(plan);
  node->shoot();
  cluster->run_until_stable();

  EXPECT_TRUE(node->failed());
  EXPECT_EQ(node->install_failures(), 1u);
  EXPECT_EQ(cluster->frontend().http().active_downloads(), 0u);

  cluster->disarm_faults();
  monitor::RecoveryManager recovery(*cluster);
  const auto revived = recovery.sweep_failed();
  ASSERT_EQ(revived.size(), 1u);
  EXPECT_EQ(revived[0], "compute-0-0");
  EXPECT_EQ(recovery.escalations(), 1u);
  EXPECT_TRUE(node->is_running());
}

// --- power flaps -------------------------------------------------------------

TEST(FaultPipeline, PowerFlapMidInstallForcesFreshInstall) {
  auto cluster = integrated_cluster(2);
  Node* victim = cluster->node("compute-0-0");
  netsim::FaultPlan plan;
  plan.power_flaps = {{200.0, 0, 30.0}};  // node 0 loses power mid-download
  auto& faults = cluster->arm_faults(plan);
  for (Node* node : cluster->nodes()) node->shoot();
  cluster->run_until_stable();

  EXPECT_EQ(faults.stats().power_flaps, 1u);
  EXPECT_TRUE(victim->is_running());
  EXPECT_EQ(victim->install_count(), 2);
  // The flap aborted the in-flight download server-side.
  EXPECT_TRUE(cluster->consistent());
  // The untouched node was on the clean schedule.
  EXPECT_NEAR(cluster->node("compute-0-1")->last_install_duration(), 618.0, 5.0);
  EXPECT_GT(victim->last_install_duration(), 618.0 - 5.0);
}

// --- watchdog ----------------------------------------------------------------

TEST(FaultPipeline, WatchdogPowerCyclesWedgedInstall) {
  ClusterConfig config = small_config();
  config.timings.install_watchdog = 700.0;
  auto cluster = integrated_cluster(1, std::move(config));
  Node* node = cluster->node("compute-0-0");
  netsim::FaultPlan plan;
  // The CGI is down until t+800: the install wedges in kickstart retries
  // long enough for the watchdog (700 s) to hard-cycle the node; the fresh
  // attempt starts after the outage ends and completes.
  plan.kickstart_outages = {{60.0, 800.0}};
  cluster->arm_faults(plan);
  node->shoot();
  cluster->run_until_stable();

  EXPECT_TRUE(node->is_running());
  EXPECT_EQ(node->watchdog_fires(), 1u);
  EXPECT_EQ(node->install_count(), 2);
  EXPECT_FALSE(node->failed());
}

TEST(FaultPipeline, WatchdogBudgetExhaustionEscalatesToRecovery) {
  ClusterConfig config = small_config();
  // Must stay above the 618 s clean install or the watchdog would shoot the
  // integration install too.
  config.timings.install_watchdog = 700.0;
  config.timings.watchdog_budget = 2;
  auto cluster = integrated_cluster(1, std::move(config));
  Node* node = cluster->node("compute-0-0");
  netsim::FaultPlan plan;
  plan.kickstart_outages = {{0.0, 36000.0}};  // never comes back on its own
  cluster->arm_faults(plan);
  node->shoot();
  cluster->run_until_stable();

  // Two watchdog cycles spent, third fire declares the node failed.
  EXPECT_TRUE(node->failed());
  EXPECT_EQ(node->watchdog_fires(), 2u);
  EXPECT_EQ(node->install_failures(), 1u);

  // Section 4 ladder: the outage is fixed, recovery sweeps the node back.
  cluster->disarm_faults();
  monitor::RecoveryManager recovery(*cluster);
  const auto revived = recovery.sweep_failed();
  ASSERT_EQ(revived.size(), 1u);
  EXPECT_TRUE(node->is_running());
  // A full success resets the watchdog escalation ladder.
  EXPECT_EQ(node->install_count(), 2);
}

// --- the chaos soak ----------------------------------------------------------

struct SoakResult {
  double makespan = 0.0;
  std::uint64_t fingerprint = 0;
  netsim::FaultStats stats;
};

SoakResult run_chaos_soak() {
  ClusterConfig config = small_config();
  config.frontend.http_servers = 2;
  config.frontend.http_capacity = 7.0 * 1024.0 * 1024.0;
  auto cluster = integrated_cluster(16, std::move(config));

  netsim::FaultPlan plan;
  plan.dhcp_loss = 0.25;                  // >= 20% DISCOVER loss
  plan.http_crashes = {{250.0, 0, 180.0}};  // one replica crashes mid-install
  plan.flow_kills = {{300.0, 1}, {340.0, 1}};  // two mid-download resets
  auto& faults = cluster->arm_faults(plan);

  const double start = cluster->sim().now();
  for (Node* node : cluster->nodes()) node->shoot();
  cluster->run_until_stable();

  SoakResult result;
  result.makespan = cluster->sim().now() - start;
  result.stats = faults.stats();
  for (Node* node : cluster->nodes()) {
    EXPECT_TRUE(node->is_running()) << node->hostname();
    EXPECT_EQ(node->install_count(), 2) << node->hostname();
    if (result.fingerprint == 0) result.fingerprint = node->software_fingerprint();
    EXPECT_EQ(node->software_fingerprint(), result.fingerprint) << node->hostname();
  }
  EXPECT_TRUE(cluster->consistent());
  return result;
}

TEST(FaultPipeline, ChaosSoakSixteenNodesConvergeIdentical) {
  const SoakResult result = run_chaos_soak();
  // Every planned fault actually landed.
  EXPECT_GT(result.stats.discovers_dropped, 0u);
  EXPECT_EQ(result.stats.http_crashes, 1u);
  EXPECT_EQ(result.stats.http_restarts, 1u);
  EXPECT_GE(result.stats.flows_killed, 2u);  // the 2 resets + crash casualties
  // Degraded but sane: slower than the clean contended pulse, far from the
  // run_until_stable cap.
  EXPECT_GT(result.makespan, 618.0);
  EXPECT_LT(result.makespan, 3600.0);
}

TEST(FaultPipeline, ChaosSoakIsDeterministic) {
  const SoakResult first = run_chaos_soak();
  const SoakResult second = run_chaos_soak();
  EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.stats.discovers_dropped, second.stats.discovers_dropped);
  EXPECT_EQ(first.stats.flows_killed, second.stats.flows_killed);
}

// --- injector probe semantics ------------------------------------------------

TEST(FaultInjectorTest, ProbesInactiveUntilArmedAndAfterDisarm) {
  netsim::Simulator sim;
  netsim::FaultPlan plan;
  plan.dhcp_loss = 1.0;
  plan.kickstart_outages = {{0.0, 1000.0}};
  netsim::FaultInjector injector(sim, plan);
  EXPECT_FALSE(injector.drop_discover());
  EXPECT_TRUE(injector.kickstart_available());
  injector.arm();
  EXPECT_TRUE(injector.drop_discover());
  EXPECT_FALSE(injector.kickstart_available());
  injector.disarm();
  EXPECT_FALSE(injector.drop_discover());
  EXPECT_TRUE(injector.kickstart_available());
}

TEST(FaultInjectorTest, WindowsAreRelativeToArmTime) {
  netsim::Simulator sim;
  sim.run_until(500.0);
  netsim::FaultPlan plan;
  plan.dhcp_blackouts = {{10.0, 20.0}};
  netsim::FaultInjector injector(sim, plan);
  injector.arm();
  EXPECT_FALSE(injector.drop_discover());  // t=+0: before the window
  sim.run_until(515.0);
  EXPECT_TRUE(injector.drop_discover());  // t=+15: inside
  sim.run_until(520.0);
  EXPECT_FALSE(injector.drop_discover());  // t=+20: half-open end
  EXPECT_EQ(injector.stats().discovers_dropped, 1u);
}

}  // namespace
}  // namespace rocks::cluster
