// The unified event spine (DESIGN.md §15): bus channel semantics (seq /
// since / truncation floor, mirroring the ChangeJournal contract), the
// durable trigger engine (registration, glob + threshold predicates, rate
// limits, crash/recover accounting identity), and the hierarchical health
// aggregator (O(depth) convergence, liveness transitions on the bus).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "events/aggregator.hpp"
#include "events/bus.hpp"
#include "events/trigger.hpp"
#include "sqldb/engine.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::events {
namespace {

Event make_event(EventType type, std::string subject, std::string detail = "",
                 double value = 0.0, double time = 0.0) {
  return Event{type, std::move(subject), std::move(detail), value, time, 0};
}

// --- EventBus ---------------------------------------------------------------

TEST(EventBus, ChannelsAssignIndependentMonotonicSequences) {
  EventBus bus;
  EXPECT_EQ(bus.seq(EventType::kNodeDown), 0u);
  EXPECT_EQ(bus.publish(make_event(EventType::kNodeDown, "compute-0-0")), 1u);
  EXPECT_EQ(bus.publish(make_event(EventType::kNodeDown, "compute-0-1")), 2u);
  EXPECT_EQ(bus.publish(make_event(EventType::kNodeUp, "compute-0-0")), 1u);
  EXPECT_EQ(bus.seq(EventType::kNodeDown), 2u);
  EXPECT_EQ(bus.seq(EventType::kNodeUp), 1u);
  EXPECT_EQ(bus.published(), 3u);
}

TEST(EventBus, SinceReturnsExactDeltaAndAdvancesCursor) {
  EventBus bus;
  bus.publish(make_event(EventType::kFault, "http-crash", "replica 0"));
  bus.publish(make_event(EventType::kFault, "flow-kill", "replica 1"));
  const EventDelta delta = bus.since(EventType::kFault, 0);
  ASSERT_FALSE(delta.truncated);
  ASSERT_EQ(delta.events.size(), 2u);
  EXPECT_EQ(delta.events[0].subject, "http-crash");
  EXPECT_EQ(delta.events[1].subject, "flow-kill");
  EXPECT_EQ(delta.seq, 2u);
  // Cursor at the tip: empty, not truncated.
  const EventDelta tip = bus.since(EventType::kFault, delta.seq);
  EXPECT_FALSE(tip.truncated);
  EXPECT_TRUE(tip.events.empty());
}

TEST(EventBus, BoundedLogSignalsTruncationBelowFloor) {
  EventBus bus({}, /*capacity=*/4);
  for (int i = 0; i < 10; ++i)
    bus.publish(make_event(EventType::kNodeState, strings::cat("host-", i)));
  // A cursor from before the floor is told to rescan, never given a gap.
  const EventDelta stale = bus.since(EventType::kNodeState, 2);
  EXPECT_TRUE(stale.truncated);
  EXPECT_TRUE(stale.events.empty());
  EXPECT_EQ(stale.seq, 10u);
  EXPECT_EQ(stale.floor, 6u);
  // Resuming from the returned seq is exact again.
  bus.publish(make_event(EventType::kNodeState, "host-10"));
  const EventDelta resumed = bus.since(EventType::kNodeState, stale.seq);
  ASSERT_FALSE(resumed.truncated);
  ASSERT_EQ(resumed.events.size(), 1u);
  EXPECT_EQ(resumed.events[0].subject, "host-10");
}

TEST(EventBus, RecentReturnsNewestTailOldestFirst) {
  EventBus bus;
  for (int i = 0; i < 5; ++i)
    bus.publish(make_event(EventType::kRecovery, strings::cat("host-", i)));
  const std::vector<Event> tail = bus.recent(EventType::kRecovery, 2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].subject, "host-3");
  EXPECT_EQ(tail[1].subject, "host-4");
}

TEST(EventBus, TypedAndWildcardSubscribersAndUnsubscribe) {
  EventBus bus;
  std::vector<std::string> typed;
  std::vector<std::string> all;
  const std::size_t typed_id = bus.subscribe(
      EventType::kNodeDown, [&](const Event& event) { typed.push_back(event.subject); });
  bus.subscribe_all([&](const Event& event) { all.push_back(event.subject); });
  bus.publish(make_event(EventType::kNodeDown, "compute-0-0"));
  bus.publish(make_event(EventType::kNodeUp, "compute-0-1"));
  EXPECT_EQ(typed, std::vector<std::string>{"compute-0-0"});
  EXPECT_EQ(all, (std::vector<std::string>{"compute-0-0", "compute-0-1"}));
  bus.unsubscribe(typed_id);
  bus.publish(make_event(EventType::kNodeDown, "compute-0-2"));
  EXPECT_EQ(typed.size(), 1u);
  EXPECT_EQ(all.size(), 3u);
}

TEST(EventBus, ClockStampsPublishTime) {
  double now = 42.0;
  EventBus bus([&now] { return now; });
  bus.publish(make_event(EventType::kQuorum, "frontend-0", "lost"));
  now = 99.0;
  bus.publish(make_event(EventType::kQuorum, "frontend-0", "restored"));
  const auto events = bus.recent(EventType::kQuorum, 10);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].time, 42.0);
  EXPECT_DOUBLE_EQ(events[1].time, 99.0);
}

TEST(EventBus, JournalBridgeRepublishesCommitsAsConfigChange) {
  sqldb::Database db;
  EventBus bus;
  bus.bridge_journal(db.journal());
  db.execute("CREATE TABLE apps (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)");
  db.execute("INSERT INTO apps (name) VALUES ('ganglia')");
  const auto events = bus.recent(EventType::kConfigChange, 10);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().subject, "apps");
  EXPECT_DOUBLE_EQ(events.back().value,
                   static_cast<double>(db.journal().revision("apps")));
  bus.unbridge_journal();
  db.execute("INSERT INTO apps (name) VALUES ('pbs')");
  EXPECT_EQ(bus.recent(EventType::kConfigChange, 10).size(), events.size());
}

TEST(EventBus, EventTypeNamesRoundTrip) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    EventType parsed = EventType::kNodeState;
    ASSERT_TRUE(parse_event_type(event_type_name(type), parsed));
    EXPECT_EQ(parsed, type);
  }
  EventType out = EventType::kNodeState;
  EXPECT_FALSE(parse_event_type("not-a-channel", out));
}

// --- TriggerEngine ----------------------------------------------------------

TEST(TriggerEngine, MatchesGlobAndFiresBuiltInAlert) {
  sqldb::Database db;
  EventBus bus;
  TriggerEngine engine(db, bus);
  TriggerSpec spec;
  spec.name = "rack1-down";
  spec.event = EventType::kNodeDown;
  spec.subject = "compute-1-*";
  engine.add(spec);

  bus.publish(make_event(EventType::kNodeDown, "compute-0-3", "silent"));
  bus.publish(make_event(EventType::kNodeDown, "compute-1-7", "silent"));
  bus.publish(make_event(EventType::kNodeUp, "compute-1-7"));
  EXPECT_EQ(engine.firings(), 1u);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_NE(engine.alerts()[0].find("compute-1-7"), std::string::npos);
  // The firing itself is on the bus for operators tailing --events.
  const auto fired = bus.recent(EventType::kTrigger, 10);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].subject, "rack1-down");
}

TEST(TriggerEngine, ThresholdGatesOnEventValue) {
  sqldb::Database db;
  EventBus bus;
  TriggerEngine engine(db, bus);
  TriggerSpec spec;
  spec.name = "lag-high";
  spec.event = EventType::kReplicationLag;
  spec.detail = "disconnected";
  spec.threshold = 100.0;
  engine.add(spec);

  bus.publish(make_event(EventType::kReplicationLag, "follower-a", "disconnected", 40.0));
  bus.publish(make_event(EventType::kReplicationLag, "follower-b", "disconnected", 250.0));
  bus.publish(make_event(EventType::kReplicationLag, "follower-c", "reconnected", 400.0));
  EXPECT_EQ(engine.firings(), 1u);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_NE(engine.alerts()[0].find("follower-b"), std::string::npos);
}

TEST(TriggerEngine, RateLimitSuppressesAndAccountsDurably) {
  sqldb::Database db;
  EventBus bus;
  TriggerEngine engine(db, bus);
  TriggerSpec spec;
  spec.name = "flappy";
  spec.event = EventType::kNodeDown;
  spec.rate_limit = 60.0;
  engine.add(spec);

  bus.publish(make_event(EventType::kNodeDown, "compute-0-0", "silent", 0.0, 10.0));
  bus.publish(make_event(EventType::kNodeDown, "compute-0-0", "silent", 0.0, 30.0));
  bus.publish(make_event(EventType::kNodeDown, "compute-0-0", "silent", 0.0, 65.0));
  bus.publish(make_event(EventType::kNodeDown, "compute-0-0", "silent", 0.0, 71.0));
  EXPECT_EQ(engine.firings(), 2u);       // t=10 and t=71
  EXPECT_EQ(engine.suppressions(), 2u);  // t=30 and t=65
  const auto triggers = engine.list();
  ASSERT_EQ(triggers.size(), 1u);
  EXPECT_EQ(triggers[0].fired, 2u);
  EXPECT_EQ(triggers[0].suppressed, 2u);
  EXPECT_DOUBLE_EQ(triggers[0].last_fired, 71.0);
  // The accounting is table state, not process state.
  const auto row = db.execute("SELECT fired, suppressed FROM triggers WHERE name = 'flappy'");
  ASSERT_EQ(row.row_count(), 1u);
  EXPECT_EQ(row.at(0, "fired").as_int(), 2);
  EXPECT_EQ(row.at(0, "suppressed").as_int(), 2);
}

TEST(TriggerEngine, CustomActionReceivesEventAndArg) {
  sqldb::Database db;
  EventBus bus;
  TriggerEngine engine(db, bus);
  std::vector<std::string> flushed;
  engine.register_action("flush", [&](const Event& event, const std::string& arg) {
    flushed.push_back(strings::cat(arg, ":", event.subject));
  });
  TriggerSpec spec;
  spec.name = "reconfig";
  spec.event = EventType::kConfigChange;
  spec.subject = "nodes";
  spec.action = "flush";
  spec.arg = "dhcpd";
  engine.add(spec);

  bus.publish(make_event(EventType::kConfigChange, "nodes", "", 7.0));
  EXPECT_EQ(flushed, std::vector<std::string>{"dhcpd:nodes"});
  EXPECT_TRUE(engine.alerts().empty());
}

TEST(TriggerEngine, UnknownActionFallsBackToAlertAndDuplicateNameThrows) {
  sqldb::Database db;
  EventBus bus;
  TriggerEngine engine(db, bus);
  TriggerSpec spec;
  spec.name = "orphan";
  spec.event = EventType::kFault;
  spec.action = "no-such-handler";
  engine.add(spec);
  EXPECT_THROW(engine.add(spec), StateError);

  bus.publish(make_event(EventType::kFault, "power-flap", "node 3"));
  EXPECT_EQ(engine.firings(), 1u);
  ASSERT_EQ(engine.alerts().size(), 1u);  // loud default, not a silent drop
}

TEST(TriggerEngine, RemoveDisarmsAndDeletesTheRow) {
  sqldb::Database db;
  EventBus bus;
  TriggerEngine engine(db, bus);
  TriggerSpec spec;
  spec.name = "gone";
  spec.event = EventType::kNodeDown;
  engine.add(spec);
  engine.remove("gone");
  EXPECT_TRUE(engine.list().empty());
  EXPECT_EQ(db.execute("SELECT id FROM triggers").row_count(), 0u);
  bus.publish(make_event(EventType::kNodeDown, "compute-0-0"));
  EXPECT_EQ(engine.firings(), 0u);
  engine.remove("never-existed");  // no-op, not an error
}

TEST(TriggerEngine, ActionsMayCommitSqlWithoutDeadlock) {
  // A firing action that commits SQL re-enters the bus through the journal
  // bridge on the same stack; the engine's queue-and-drain must absorb it.
  sqldb::Database db;
  EventBus bus;
  bus.bridge_journal(db.journal());
  db.execute("CREATE TABLE audit (id INT PRIMARY KEY AUTO_INCREMENT, host TEXT)");
  TriggerEngine engine(db, bus);
  engine.register_action("record", [&](const Event& event, const std::string&) {
    db.execute(strings::cat("INSERT INTO audit (host) VALUES ('", event.subject, "')"));
  });
  TriggerSpec spec;
  spec.name = "auditor";
  spec.event = EventType::kNodeDown;
  spec.action = "record";
  engine.add(spec);

  bus.publish(make_event(EventType::kNodeDown, "compute-0-0"));
  bus.publish(make_event(EventType::kNodeDown, "compute-0-1"));
  EXPECT_EQ(engine.firings(), 2u);
  EXPECT_EQ(db.execute("SELECT id FROM audit").row_count(), 2u);
}

// The drill's durability claim in miniature: trigger registrations and
// firing accounting ride the WAL, so an engine rebuilt over the recovered
// database resumes with byte-identical state — including rate-limit
// decisions, which depend on the recovered last-fired stamp.
TEST(TriggerEngine, StateSurvivesCrashRecoveryWithIdenticalAccounting) {
  constexpr std::string_view kDir = "/var/lib/rocks";
  const auto fire = [](EventBus& bus, double from, double to) {
    for (double t = from; t < to; t += 10.0)
      bus.publish(make_event(EventType::kNodeDown, "compute-0-0", "silent", 0.0, t));
  };

  // Shadow: the same event sequence with no crash.
  vfs::FileSystem shadow_disk;
  sqldb::Database shadow_db;
  shadow_db.open_durable(shadow_disk, kDir);
  EventBus shadow_bus;
  TriggerEngine shadow(shadow_db, shadow_bus);
  TriggerSpec spec;
  spec.name = "flappy";
  spec.event = EventType::kNodeDown;
  spec.rate_limit = 25.0;
  shadow.add(spec);
  fire(shadow_bus, 0.0, 100.0);

  // Crashing run: same triggers, crash mid-sequence, recover, finish.
  vfs::FileSystem disk;
  {
    sqldb::Database db;
    db.open_durable(disk, kDir);
    EventBus bus;
    TriggerEngine engine(db, bus);
    engine.add(spec);
    fire(bus, 0.0, 50.0);
    // Process dies here: no clean shutdown, the WAL is all that remains.
  }
  sqldb::Database recovered_db;
  recovered_db.open_durable(disk, kDir);
  EventBus recovered_bus;
  TriggerEngine recovered(recovered_db, recovered_bus);
  const auto reloaded = recovered.list();
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_GT(reloaded[0].fired, 0u);
  fire(recovered_bus, 50.0, 100.0);

  // Identical firing accounting, and byte-identical trigger-table state.
  const auto want = shadow.list();
  const auto got = recovered.list();
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(got[0].fired, want[0].fired);
  EXPECT_EQ(got[0].suppressed, want[0].suppressed);
  EXPECT_DOUBLE_EQ(got[0].last_fired, want[0].last_fired);
  EXPECT_EQ(recovered_db.dump_state(), shadow_db.dump_state());
}

// TSan chaos: concurrent publishers on several channels, concurrent SQL
// commits re-entering the bus through the journal bridge, and the trigger
// engine persisting accounting into the same database it is racing with.
TEST(TriggerEngine, ChaosConcurrentPublishersAndCommits) {
  constexpr std::size_t kPublishers = 3;
  constexpr std::size_t kWriters = 2;
  constexpr std::size_t kOps = 400;
  sqldb::Database db;
  EventBus bus;
  bus.bridge_journal(db.journal());
  db.execute("CREATE TABLE load (id INT PRIMARY KEY AUTO_INCREMENT, src TEXT)");
  TriggerEngine engine(db, bus);
  std::atomic<std::uint64_t> actions{0};
  engine.register_action("count", [&](const Event&, const std::string&) {
    actions.fetch_add(1);
  });
  TriggerSpec down;
  down.name = "any-down";
  down.event = EventType::kNodeDown;
  down.action = "count";
  engine.add(down);
  TriggerSpec config;
  config.name = "load-commits";
  config.event = EventType::kConfigChange;
  config.subject = "load";
  config.action = "count";
  engine.add(config);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kPublishers; ++t) {
    threads.emplace_back([&bus, t] {
      for (std::size_t i = 0; i < kOps; ++i) {
        bus.publish(make_event(EventType::kNodeDown, strings::cat("host-", t, "-", i),
                               "silent", 0.0, static_cast<double>(i)));
        bus.publish(make_event(EventType::kNodeUp, strings::cat("host-", t, "-", i)));
      }
    });
  }
  for (std::size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&db, t] {
      for (std::size_t i = 0; i < kOps; ++i)
        db.execute(strings::cat("INSERT INTO load (src) VALUES ('w", t, "-", i, "')"));
    });
  }
  for (auto& thread : threads) thread.join();

  // Every matching event fired exactly one action, none were lost: the
  // node-down trigger saw every publish, the config trigger every commit
  // to `load` (accounting UPDATEs land on `triggers`, a different channel).
  EXPECT_EQ(engine.firings(), kPublishers * kOps + kWriters * kOps);
  EXPECT_EQ(actions.load(), engine.firings());
  const auto rows = db.execute("SELECT id FROM load");
  EXPECT_EQ(rows.row_count(), kWriters * kOps);
}

// --- HealthAggregator -------------------------------------------------------

TEST(HealthAggregator, ConvergesInDepthRoundsNotEndpointScans) {
  AggregatorConfig config;
  config.leaf_size = 8;
  config.fanout = 8;
  HealthAggregator tree(config);
  tree.register_endpoints(512);        // 64 leaves -> 8 -> 1: depth 3
  EXPECT_EQ(tree.depth(), 3u);

  for (std::size_t i = 0; i < 512; ++i) tree.heartbeat(i, 10.0);
  const std::size_t rounds = tree.converge(10.0);
  EXPECT_LE(rounds, tree.depth() + 1);  // the O(depth) bound
  EXPECT_EQ(tree.root().total, 512u);
  EXPECT_EQ(tree.root().alive, 512u);

  // Quiet cluster: nothing dirty, no deadline crossed, zero work.
  EXPECT_EQ(tree.rollup_round(11.0), 0u);
}

TEST(HealthAggregator, SilentEndpointDeclaredDeadAfterThreshold) {
  AggregatorConfig config;
  config.dead_after = 30.0;
  EventBus bus;
  HealthAggregator tree(config, &bus);
  tree.register_endpoints(3);
  tree.set_name(0, "compute-0-0");
  tree.set_name(1, "compute-0-1");
  tree.set_name(2, "compute-0-2");
  tree.heartbeat(0, 10.0);
  tree.heartbeat(1, 10.0);
  tree.heartbeat(2, 10.0);
  tree.converge(10.0);
  EXPECT_TRUE(tree.dead_endpoints().empty());

  // Node 1 goes silent; the others keep beating.
  tree.heartbeat(0, 40.0);
  tree.heartbeat(2, 40.0);
  tree.converge(41.0);
  EXPECT_EQ(tree.dead_endpoints(), std::vector<std::string>{"compute-0-1"});
  EXPECT_FALSE(tree.alive(1));
  const auto down = bus.recent(EventType::kNodeDown, 10);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].subject, "compute-0-1");

  // It comes back: one kNodeUp, dead set empty again.
  tree.heartbeat(1, 45.0);
  tree.converge(45.0);
  EXPECT_TRUE(tree.dead_endpoints().empty());
  const auto up = bus.recent(EventType::kNodeUp, 10);
  ASSERT_FALSE(up.empty());
  EXPECT_EQ(up.back().subject, "compute-0-1");
}

TEST(HealthAggregator, NeverHeartbeatedEndpointsStartDead) {
  // Matches the seed monitor: a node is not alive until its first beat.
  HealthAggregator tree;
  tree.register_endpoints(2);
  tree.set_name(0, "compute-0-0");
  tree.set_name(1, "compute-0-1");
  tree.heartbeat(0, 5.0);
  tree.converge(5.0);
  EXPECT_EQ(tree.root().alive, 1u);
  EXPECT_EQ(tree.dead_endpoints(), std::vector<std::string>{"compute-0-1"});
  EXPECT_LT(tree.last_seen(1), 0.0);
}

TEST(HealthAggregator, RootSummaryChangesPublishHealthSummary) {
  EventBus bus;
  AggregatorConfig config;
  config.dead_after = 30.0;
  HealthAggregator tree(config, &bus);
  tree.register_endpoints(4);
  for (std::size_t i = 0; i < 4; ++i) tree.heartbeat(i, 0.0);
  tree.converge(0.0);
  const auto after_up = bus.recent(EventType::kHealthSummary, 10);
  ASSERT_FALSE(after_up.empty());
  EXPECT_DOUBLE_EQ(after_up.back().value, 4.0);

  // Two die: one more summary, alive count down to 2.
  tree.heartbeat(0, 40.0);
  tree.heartbeat(1, 40.0);
  tree.converge(41.0);
  const auto after_down = bus.recent(EventType::kHealthSummary, 10);
  EXPECT_GT(after_down.size(), after_up.size());
  EXPECT_DOUBLE_EQ(after_down.back().value, 2.0);
  EXPECT_EQ(tree.root_version(), after_down.size());
}

TEST(HealthAggregator, IdleLeavesAreSkippedUntilTheirDeadline) {
  AggregatorConfig config;
  config.leaf_size = 4;
  config.fanout = 4;
  config.dead_after = 30.0;
  HealthAggregator tree(config);
  tree.register_endpoints(64);  // 16 leaves -> 4 -> 1
  for (std::size_t i = 0; i < 64; ++i) tree.heartbeat(i, 0.0);
  tree.converge(0.0);
  const std::uint64_t settled = tree.rollup_work();

  // One endpoint beats again: only its leaf (and the path up) recomputes.
  tree.heartbeat(7, 10.0);
  tree.converge(10.0);
  const std::uint64_t delta = tree.rollup_work() - settled;
  EXPECT_LE(delta, tree.depth() + 1);
}

TEST(HealthAggregator, GrowsMonotonicallyAndRejectsShrink) {
  HealthAggregator tree;
  tree.register_endpoints(10);
  tree.register_endpoints(10);  // same size: fine
  tree.register_endpoints(40);  // growth: fine
  EXPECT_EQ(tree.endpoint_count(), 40u);
  EXPECT_THROW(tree.register_endpoints(5), StateError);
}

}  // namespace
}  // namespace rocks::events
