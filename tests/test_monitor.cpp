// Tests for the health-monitoring substrate and the Section 4 recovery
// ladder (power cycle, then crash cart).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "monitor/ganglia.hpp"
#include "monitor/recovery.hpp"

namespace rocks::monitor {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster::ClusterConfig config;
    config.synth.filler_packages = 50;
    cluster_ = std::make_unique<cluster::Cluster>(std::move(config));
    for (int i = 0; i < 4; ++i) cluster_->add_node();
    cluster_->integrate_all();
    monitor_ = std::make_unique<GangliaMonitor>(*cluster_);
    monitor_->start();
  }

  bool contains(const std::vector<std::string>& list, const std::string& name) {
    return std::find(list.begin(), list.end(), name) != list.end();
  }

  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<GangliaMonitor> monitor_;
};

TEST_F(MonitorTest, HeartbeatsArriveFromAllNodes) {
  cluster_->sim().run_until(cluster_->sim().now() + 30.0);
  EXPECT_GE(monitor_->heartbeats_received(), 4u);
  for (const auto& view : monitor_->cluster_view()) {
    EXPECT_TRUE(view.alive) << view.host;
    EXPECT_GT(view.metrics.packages, 50u);
    EXPECT_GT(view.metrics.disk_used, 0u);
  }
  EXPECT_TRUE(monitor_->dead_nodes().empty());
}

TEST_F(MonitorTest, SilentNodeDeclaredDeadAfterThreshold) {
  cluster_->sim().run_until(cluster_->sim().now() + 15.0);
  cluster_->node("compute-0-2")->power_off();
  // Not yet past dead_after: may still be considered alive.
  cluster_->sim().run_until(cluster_->sim().now() + 45.0);
  const auto dead = monitor_->dead_nodes();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "compute-0-2");
  EXPECT_NE(monitor_->report().find("DEAD"), std::string::npos);
}

TEST_F(MonitorTest, MetricsTrackProcesses) {
  cluster_->node("compute-0-0")->launch_process("mdrun");
  cluster_->node("compute-0-0")->launch_process("mdrun");
  cluster_->sim().run_until(cluster_->sim().now() + 15.0);
  for (const auto& view : monitor_->cluster_view()) {
    if (view.host == "compute-0-0") {
      EXPECT_EQ(view.metrics.processes, 2u);
    }
  }
}

TEST_F(MonitorTest, StopSilencesEmitters) {
  cluster_->sim().run_until(cluster_->sim().now() + 15.0);
  const auto before = monitor_->heartbeats_received();
  monitor_->stop();
  cluster_->sim().run_until(cluster_->sim().now() + 60.0);
  EXPECT_EQ(monitor_->heartbeats_received(), before);
}

TEST_F(MonitorTest, PowerCycleRecoversHungNode) {
  // A node wedges (software hang): silent but hardware is fine.
  cluster_->sim().run_until(cluster_->sim().now() + 15.0);
  cluster_->node("compute-0-1")->power_off();
  cluster_->sim().run_until(cluster_->sim().now() + 60.0);
  ASSERT_EQ(monitor_->dead_nodes().size(), 1u);

  RecoveryManager recovery(*cluster_);
  const RecoveryReport report = recovery.recover(monitor_->dead_nodes());
  EXPECT_TRUE(contains(report.power_cycled, "compute-0-1"));
  EXPECT_TRUE(contains(report.recovered, "compute-0-1"));
  EXPECT_TRUE(report.needs_crash_cart.empty());
  // The hard power cycle forced a reinstall (the paper's footnote).
  EXPECT_EQ(cluster_->node("compute-0-1")->install_count(), 2);
}

TEST_F(MonitorTest, HardwareFaultEscalatesToCrashCart) {
  cluster_->sim().run_until(cluster_->sim().now() + 15.0);
  cluster_->node("compute-0-3")->inject_hardware_fault();
  cluster_->sim().run_until(cluster_->sim().now() + 60.0);

  RecoveryManager recovery(*cluster_);
  const RecoveryReport report = recovery.recover(monitor_->dead_nodes());
  EXPECT_TRUE(contains(report.needs_crash_cart, "compute-0-3"));
  EXPECT_FALSE(contains(report.recovered, "compute-0-3"));

  // Physical intervention: swap hardware; the node reinstalls and returns.
  const auto revived = recovery.crash_cart_visit(report.needs_crash_cart);
  EXPECT_TRUE(contains(revived, "compute-0-3"));
  EXPECT_EQ(recovery.crash_cart_trips(), 1u);
  EXPECT_TRUE(cluster_->node("compute-0-3")->is_running());
  // The monitor sees it breathing again.
  cluster_->sim().run_until(cluster_->sim().now() + 30.0);
  EXPECT_TRUE(monitor_->dead_nodes().empty());
}

TEST_F(MonitorTest, HardwareFailedNodeIsNotPowerCycled) {
  // Regression: a node with known-dead hardware must not be counted as an
  // automated "power_cycled -> recovered" attempt — the PDU cannot help it.
  // It goes straight to the crash-cart list and burns no PDU cycle.
  cluster_->sim().run_until(cluster_->sim().now() + 15.0);
  cluster_->node("compute-0-2")->inject_hardware_fault();
  cluster_->node("compute-0-3")->power_off();  // software hang: cycleable
  cluster_->sim().run_until(cluster_->sim().now() + 60.0);
  ASSERT_EQ(monitor_->dead_nodes().size(), 2u);

  RecoveryManager recovery(*cluster_);
  const auto cycles_before = cluster_->pdu().cycles_executed();
  const RecoveryReport report = recovery.recover(monitor_->dead_nodes());

  EXPECT_FALSE(contains(report.power_cycled, "compute-0-2"));
  EXPECT_FALSE(contains(report.recovered, "compute-0-2"));
  EXPECT_TRUE(contains(report.needs_crash_cart, "compute-0-2"));
  EXPECT_TRUE(contains(report.power_cycled, "compute-0-3"));
  EXPECT_TRUE(contains(report.recovered, "compute-0-3"));
  // Exactly one outlet fired: the hardware-failed node's was skipped.
  EXPECT_EQ(cluster_->pdu().cycles_executed(), cycles_before + 1);
}

TEST_F(MonitorTest, SweepFailedIgnoresHealthyAndHardwareFailedNodes) {
  cluster_->node("compute-0-1")->inject_hardware_fault();
  RecoveryManager recovery(*cluster_);
  // Nothing is in kFailed: the sweep is a no-op and performs no escalation.
  EXPECT_TRUE(recovery.sweep_failed().empty());
  EXPECT_EQ(recovery.escalations(), 0u);
  EXPECT_EQ(cluster_->pdu().cycles_executed(), 0u);
}

TEST_F(MonitorTest, ReinstallingNodeGoesQuietThenReturns) {
  cluster_->sim().run_until(cluster_->sim().now() + 15.0);
  cluster_->node("compute-0-0")->shoot();
  // Mid-install: silent long enough to be declared dead (a reinstall takes
  // ~10 minutes; the dead-after threshold is 30 s) — the operator's view
  // distinguishes this only by knowing a shoot-node is in flight.
  cluster_->sim().run_until(cluster_->sim().now() + 120.0);
  EXPECT_FALSE(monitor_->dead_nodes().empty());
  cluster_->run_until_stable();
  cluster_->sim().run_until(cluster_->sim().now() + 30.0);
  EXPECT_TRUE(monitor_->dead_nodes().empty());
}

}  // namespace
}  // namespace rocks::monitor
