// Unit tests for the mini SQL engine, culminating in the paper's own
// cluster-kill queries (Section 6.4) run verbatim.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "sqldb/engine.hpp"
#include "support/error.hpp"

namespace rocks::sqldb {
namespace {

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute(
        "CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, mac TEXT, name TEXT, "
        "membership INT, rack INT, rank INT, ip TEXT, comment TEXT)");
    db.execute(
        "CREATE TABLE memberships (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, "
        "appliance INT, compute TEXT)");
  }

  void load_paper_tables() {
    // Table II of the paper.
    db.execute(
        "INSERT INTO nodes (mac, name, membership, rack, rank, ip, comment) VALUES "
        "('00:30:c1:d8:ac:80', 'frontend-0',  1, 0, 0, '10.1.1.1',       'Gateway machine'),"
        "('00:01:e7:1a:be:00', 'network-0-0', 4, 0, 0, '10.255.255.253', 'Switch for Cabinet 0'),"
        "('00:50:8b:a5:4d:b1', 'nfs-0-0',     7, 0, 0, '10.255.255.249', 'NFS Server in Cabinet 0'),"
        "('00:50:8b:e0:3a:a7', 'compute-0-0', 2, 0, 0, '10.255.255.245', 'Compute node'),"
        "('00:50:8b:e0:44:5e', 'compute-0-1', 2, 0, 1, '10.255.255.244', 'Compute node'),"
        "('00:50:8b:e0:40:95', 'compute-0-2', 2, 0, 2, '10.255.255.243', 'Compute node'),"
        "('00:50:8b:e0:40:93', 'compute-0-3', 2, 0, 3, '10.255.255.242', 'Compute node'),"
        "('00:50:8b:c5:c7:d3', 'web-1-0',     8, 1, 0, '10.255.255.246', 'Web Server in Cabinet 1')");
    // Table III of the paper (subset of columns we model).
    db.execute(
        "INSERT INTO memberships (name, appliance, compute) VALUES "
        "('Frontend', 1, 'no'), ('Compute', 2, 'yes'), ('External', 1, 'no'),"
        "('Ethernet Switches', 4, 'no'), ('Myrinet Switches', 4, 'no'), ('Power Units', 5, 'no')");
  }

  Database db;
};

TEST_F(DbTest, CreateAndInsertAutoIncrement) {
  load_paper_tables();
  const ResultSet r = db.execute("SELECT id, name FROM nodes ORDER BY id");
  ASSERT_EQ(r.row_count(), 8u);
  EXPECT_EQ(r.rows[0][0].as_int(), 1);
  EXPECT_EQ(r.rows[7][0].as_int(), 8);
  EXPECT_EQ(r.at(0, "name").as_text(), "frontend-0");
}

TEST_F(DbTest, CreateDuplicateTableFails) {
  EXPECT_THROW(db.execute("CREATE TABLE nodes (id INT)"), StateError);
  EXPECT_NO_THROW(db.execute("CREATE TABLE IF NOT EXISTS nodes (id INT)"));
}

TEST_F(DbTest, DropTable) {
  db.execute("DROP TABLE memberships");
  EXPECT_FALSE(db.has_table("memberships"));
  EXPECT_THROW(db.execute("DROP TABLE memberships"), LookupError);
  EXPECT_NO_THROW(db.execute("DROP TABLE IF EXISTS memberships"));
}

TEST_F(DbTest, SelectWhereComparisons) {
  load_paper_tables();
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rack = 1").row_count(), 1u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rank >= 2").row_count(), 2u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rank > 0 AND rack = 0").row_count(), 3u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rack = 1 OR membership = 7").row_count(),
            2u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE NOT membership = 2").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE membership != 2").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE membership <> 2").row_count(), 4u);
}

TEST_F(DbTest, SelectLike) {
  load_paper_tables();
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE name LIKE 'compute-%'").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE name LIKE 'compute-0-_'").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE name NOT LIKE 'compute-%'").row_count(),
            4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE comment LIKE '%Cabinet%'").row_count(), 3u);
}

TEST_F(DbTest, SelectInList) {
  load_paper_tables();
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE membership IN (4, 7, 8)").row_count(), 3u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE membership NOT IN (2)").row_count(), 4u);
}

TEST_F(DbTest, OrderByAndLimit) {
  load_paper_tables();
  const ResultSet r =
      db.execute("SELECT name FROM nodes ORDER BY rack DESC, rank ASC LIMIT 2");
  ASSERT_EQ(r.row_count(), 2u);
  EXPECT_EQ(r.rows[0][0].as_text(), "web-1-0");
}

TEST_F(DbTest, SelectStar) {
  load_paper_tables();
  const ResultSet r = db.execute("SELECT * FROM memberships");
  EXPECT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.row_count(), 6u);
}

TEST_F(DbTest, SelectExpressionArithmetic) {
  load_paper_tables();
  const ResultSet r =
      db.execute("SELECT name, rack * 100 + rank AS position FROM nodes WHERE name = 'web-1-0'");
  EXPECT_EQ(r.at(0, "position").as_int(), 100);
}

TEST_F(DbTest, UpdateAndDelete) {
  load_paper_tables();
  ResultSet r = db.execute("UPDATE nodes SET comment = 'down' WHERE rack = 0 AND rank = 2");
  EXPECT_EQ(r.affected_rows, 1u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE comment = 'down'").row_count(), 1u);
  r = db.execute("DELETE FROM nodes WHERE membership = 2");
  EXPECT_EQ(r.affected_rows, 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes").row_count(), 4u);
}

TEST_F(DbTest, UpdateEvaluatesRhsAgainstPreUpdateRow) {
  load_paper_tables();
  db.execute("UPDATE nodes SET rack = rank, rank = rack WHERE name = 'compute-0-3'");
  const ResultSet r = db.execute("SELECT rack, rank FROM nodes WHERE name = 'compute-0-3'");
  EXPECT_EQ(r.rows[0][0].as_int(), 3);  // swap, not sequential assignment
  EXPECT_EQ(r.rows[0][1].as_int(), 0);
}

TEST_F(DbTest, NullSemantics) {
  db.execute("CREATE TABLE t (a INT, b TEXT)");
  db.execute("INSERT INTO t VALUES (NULL, 'x'), (1, NULL)");
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a IS NULL").row_count(), 1u);
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a IS NOT NULL").row_count(), 1u);
  // NULL comparisons are never true.
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a = NULL").row_count(), 0u);
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a != NULL").row_count(), 0u);
}

TEST_F(DbTest, PaperClusterKillRackQuery) {
  load_paper_tables();
  // Verbatim from Section 6.4: kill runaway processes in cabinet 1.
  const auto names = db.query_column("select name from nodes where rack=1");
  EXPECT_EQ(names, (std::vector<std::string>{"web-1-0"}));
}

TEST_F(DbTest, PaperClusterKillJoinQuery) {
  load_paper_tables();
  // Verbatim from Section 6.4: the multi-table join selecting compute nodes.
  const auto names = db.query_column(
      "select nodes.name from nodes,memberships where "
      "nodes.membership = memberships.id and "
      "memberships.name = 'Compute'");
  EXPECT_EQ(names, (std::vector<std::string>{"compute-0-0", "compute-0-1", "compute-0-2",
                                             "compute-0-3"}));
}

TEST_F(DbTest, ExplicitJoinSyntaxMatchesCommaJoin) {
  load_paper_tables();
  const auto a = db.query_column(
      "select nodes.name from nodes join memberships on nodes.membership = memberships.id "
      "where memberships.compute = 'yes'");
  const auto b = db.query_column(
      "select nodes.name from nodes, memberships where nodes.membership = memberships.id "
      "and memberships.compute = 'yes'");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4u);
}

TEST_F(DbTest, TableAliases) {
  load_paper_tables();
  const auto names = db.query_column(
      "select n.name from nodes n, memberships m where n.membership = m.id and "
      "m.name = 'Frontend'");
  EXPECT_EQ(names, (std::vector<std::string>{"frontend-0"}));
}

TEST_F(DbTest, AmbiguousColumnRejected) {
  load_paper_tables();
  // Both tables have "name".
  EXPECT_THROW(db.execute("SELECT name FROM nodes, memberships"), LookupError);
}

TEST_F(DbTest, UnknownColumnAndTableRejected) {
  EXPECT_THROW(db.execute("SELECT nope FROM nodes"), LookupError);
  EXPECT_THROW(db.execute("SELECT x.name FROM nodes"), LookupError);
  EXPECT_THROW(db.execute("SELECT name FROM ghosts"), LookupError);
  EXPECT_THROW(db.execute("INSERT INTO nodes (ghost) VALUES (1)"), LookupError);
}

TEST_F(DbTest, ParseErrors) {
  EXPECT_THROW(db.execute("SELEC name FROM nodes"), ParseError);
  EXPECT_THROW(db.execute("SELECT FROM nodes"), ParseError);
  EXPECT_THROW(db.execute("SELECT name nodes"), ParseError);
  EXPECT_THROW(db.execute("SELECT name FROM nodes WHERE"), ParseError);
  EXPECT_THROW(db.execute(""), ParseError);
  EXPECT_THROW(db.execute("SELECT name FROM nodes; extra"), ParseError);
}

TEST_F(DbTest, StringEscapes) {
  db.execute("CREATE TABLE s (v TEXT)");
  db.execute("INSERT INTO s VALUES ('it''s'), (\"dq\"), ('back\\'slash')");
  const auto vals = db.query_column("SELECT v FROM s");
  EXPECT_EQ(vals, (std::vector<std::string>{"it's", "dq", "back'slash"}));
}

TEST_F(DbTest, TextCoercionOnTypedColumns) {
  db.execute("CREATE TABLE c (n INT)");
  db.execute("INSERT INTO c VALUES ('42')");
  EXPECT_EQ(db.execute("SELECT n FROM c").rows[0][0].as_int(), 42);
}

TEST_F(DbTest, RenderProducesAsciiTable) {
  load_paper_tables();
  const std::string out = db.execute("SELECT id, name FROM memberships ORDER BY id").render();
  EXPECT_NE(out.find("Compute"), std::string::npos);
  EXPECT_NE(out.find("Power Units"), std::string::npos);
}

TEST_F(DbTest, EmptyTableSelects) {
  EXPECT_EQ(db.execute("SELECT * FROM nodes").row_count(), 0u);
  EXPECT_EQ(db.execute("SELECT nodes.name FROM nodes, memberships").row_count(), 0u);
  // Ambiguity is detected even with no rows to scan.
  EXPECT_THROW(db.execute("SELECT name FROM nodes, memberships"), LookupError);
}

TEST_F(DbTest, QueryColumnRequiresSingleColumn) {
  load_paper_tables();
  EXPECT_THROW(db.query_column("SELECT id, name FROM nodes"), StateError);
}

TEST_F(DbTest, ArithmeticEdgeCases) {
  load_paper_tables();
  // Division/modulo by zero yield NULL (so rows drop out of WHERE).
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rank / rank > 0").row_count(), 3u)
      << "rank=0 rows produce NULL and are filtered";
  EXPECT_EQ(db.execute("SELECT 7 % 3 AS m FROM memberships LIMIT 1").rows[0][0].as_int(), 1);
  EXPECT_EQ(db.execute("SELECT -rank AS n FROM nodes WHERE name = 'compute-0-3'")
                .rows[0][0]
                .as_int(),
            -3);
  // Mixed int/real arithmetic promotes to real.
  const auto r = db.execute("SELECT rank + 0.5 AS x FROM nodes WHERE name = 'compute-0-1'");
  EXPECT_DOUBLE_EQ(r.rows[0][0].as_real(), 1.5);
}

TEST_F(DbTest, OrderByExpressionAndLimitZero) {
  load_paper_tables();
  const auto r = db.execute(
      "SELECT name FROM nodes WHERE membership = 2 ORDER BY rack * 10 + rank DESC");
  ASSERT_EQ(r.row_count(), 4u);
  EXPECT_EQ(r.rows[0][0].as_text(), "compute-0-3");
  EXPECT_EQ(db.execute("SELECT name FROM nodes LIMIT 0").row_count(), 0u);
}

TEST_F(DbTest, UpdateWithoutWhereTouchesAllRows) {
  load_paper_tables();
  const auto r = db.execute("UPDATE memberships SET compute = 'no'");
  EXPECT_EQ(r.affected_rows, 6u);
  EXPECT_EQ(db.execute("SELECT name FROM memberships WHERE compute = 'yes'").row_count(), 0u);
}

TEST_F(DbTest, SelfJoinWithAliases) {
  load_paper_tables();
  // Pairs of compute nodes in the same rack with adjacent ranks.
  const auto r = db.execute(
      "SELECT a.name, b.name FROM nodes a, nodes b WHERE a.rack = b.rack AND "
      "a.membership = 2 AND b.membership = 2 AND b.rank = a.rank + 1 ORDER BY a.rank");
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.rows[0][0].as_text(), "compute-0-0");
  EXPECT_EQ(r.rows[0][1].as_text(), "compute-0-1");
}

TEST_F(DbTest, ThreeTableJoin) {
  load_paper_tables();
  db.execute("CREATE TABLE racks (id INT, location TEXT)");
  db.execute("INSERT INTO racks VALUES (0, 'machine room A'), (1, 'machine room B')");
  const auto r = db.query_column(
      "SELECT racks.location FROM nodes, memberships, racks WHERE "
      "nodes.membership = memberships.id AND nodes.rack = racks.id AND "
      "memberships.name = 'Compute' AND nodes.rank = 0");
  EXPECT_EQ(r, (std::vector<std::string>{"machine room A"}));
}

TEST_F(DbTest, InListWithNullNeedleNeverMatches) {
  db.execute("CREATE TABLE t (a INT)");
  db.execute("INSERT INTO t VALUES (NULL), (1)");
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a IN (1, 2)").row_count(), 1u);
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a NOT IN (99)").row_count(), 1u);
}

// --- query planner: indexes, hash joins, and A/B equivalence ---------------

/// Runs `sql` with the planner on and off and requires bit-identical
/// ResultSets (columns, row order, and every Value).
void expect_planner_matches_scan(Database& db, std::string_view sql) {
  db.set_planner_enabled(true);
  const ResultSet planned = db.execute(sql);
  db.set_planner_enabled(false);
  const ResultSet scanned = db.execute(sql);
  db.set_planner_enabled(true);
  ASSERT_EQ(planned.columns, scanned.columns) << sql;
  ASSERT_EQ(planned.row_count(), scanned.row_count()) << sql;
  for (std::size_t i = 0; i < planned.row_count(); ++i)
    for (std::size_t j = 0; j < planned.columns.size(); ++j)
      EXPECT_EQ(planned.rows[i][j].compare(scanned.rows[i][j]), 0)
          << sql << " differs at row " << i << " column " << j;
}

class PlannerTest : public DbTest {
 protected:
  void SetUp() override {
    DbTest::SetUp();
    load_paper_tables();
    db.execute("CREATE INDEX nodes_ip ON nodes (ip)");
    db.execute("CREATE INDEX nodes_mac ON nodes (mac)");
    db.execute("CREATE INDEX nodes_membership ON nodes (membership)");
  }
};

TEST_F(PlannerTest, IndexedAndScannedResultsIdenticalAcrossCorpus) {
  for (const char* sql : {
           // Index probes, with and without residual conjuncts.
           "SELECT name FROM nodes WHERE ip = '10.255.255.245'",
           "SELECT name FROM nodes WHERE membership = 2 AND rank > 1",
           "SELECT name FROM nodes WHERE rank > 1 AND membership = 2",
           "SELECT name FROM nodes WHERE 2 = membership",
           "SELECT name FROM nodes WHERE membership = 99",
           "SELECT * FROM nodes WHERE mac = '00:50:8b:e0:40:95'",
           "SELECT name FROM nodes WHERE membership = 2 ORDER BY rank DESC LIMIT 2",
           // Unindexed / non-equality single-table shapes (scan either way).
           "SELECT name FROM nodes WHERE rank >= 2",
           "SELECT name FROM nodes WHERE rack = 1 OR membership = 7",
           "SELECT name FROM nodes WHERE name LIKE 'compute-%'",
           // Index joins: a selective indexed literal on either side.
           "SELECT memberships.name FROM nodes, memberships WHERE "
           "nodes.membership = memberships.id AND nodes.ip = '10.255.255.245'",
           "SELECT nodes.name FROM memberships, nodes WHERE "
           "nodes.membership = memberships.id AND nodes.mac = '00:50:8b:e0:3a:a7'",
           "SELECT nodes.name FROM nodes, memberships WHERE "
           "nodes.membership = memberships.id AND nodes.ip = '10.0.0.99'",
           // Hash joins, qualified and aliased.
           "select nodes.name from nodes,memberships where "
           "nodes.membership = memberships.id and memberships.name = 'Compute'",
           "select n.name from nodes n, memberships m where n.membership = m.id and "
           "m.compute = 'yes'",
           "SELECT a.name, b.name FROM nodes a, nodes b WHERE a.rack = b.rack AND "
           "a.membership = 2 AND b.membership = 2 AND b.rank = a.rank + 1 ORDER BY a.rank",
           "SELECT nodes.name, memberships.name FROM nodes, memberships WHERE "
           "memberships.id = nodes.membership",
           // Three tables: planner falls back to the scan.
           "SELECT nodes.name FROM nodes, memberships, nodes x WHERE "
           "nodes.membership = memberships.id AND x.rank = 0 AND nodes.rack = 0",
       })
    expect_planner_matches_scan(db, sql);
}

TEST_F(PlannerTest, EqualityOnIndexedColumnUsesIndexProbe) {
  const auto before = db.plans_index_probe();
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE ip = '10.255.255.245'").row_count(), 1u);
  EXPECT_EQ(db.plans_index_probe(), before + 1);
}

TEST_F(PlannerTest, SelectiveLiteralInJoinUsesIndexJoin) {
  const auto before = db.plans_index_join();
  const auto rows = db.execute(
      "SELECT memberships.name FROM nodes, memberships WHERE "
      "nodes.membership = memberships.id AND nodes.ip = '10.255.255.245'");
  EXPECT_EQ(db.plans_index_join(), before + 1);
  ASSERT_EQ(rows.row_count(), 1u);
  EXPECT_EQ(rows.at(0, 0).as_text(), "Compute");
}

TEST_F(PlannerTest, UnselectiveLiteralInJoinStaysHashJoin) {
  // membership = 2 probes 4 of 8 node rows: pairing 4x6 combinations costs
  // more than hashing 8+6 rows, so the planner keeps the hash join.
  const auto joins_before = db.plans_hash_join();
  const auto index_joins_before = db.plans_index_join();
  db.execute(
      "SELECT nodes.name FROM nodes, memberships WHERE "
      "nodes.membership = memberships.id AND nodes.membership = 2");
  EXPECT_EQ(db.plans_hash_join(), joins_before + 1);
  EXPECT_EQ(db.plans_index_join(), index_joins_before);
}

TEST_F(PlannerTest, EquiJoinUsesHashJoin) {
  const auto before = db.plans_hash_join();
  db.execute(
      "select nodes.name from nodes,memberships where "
      "nodes.membership = memberships.id and memberships.name = 'Compute'");
  EXPECT_EQ(db.plans_hash_join(), before + 1);
}

TEST_F(PlannerTest, NonEqualityPredicatesFallBackToScan) {
  const auto before = db.plans_scan();
  db.execute("SELECT name FROM nodes WHERE name LIKE 'compute-%'");
  db.execute("SELECT name FROM nodes WHERE rack = 1 OR membership = 7");
  EXPECT_EQ(db.plans_scan(), before + 2);
}

TEST_F(PlannerTest, IndexProbeWithNullLiteralMatchesNothing) {
  const auto before = db.plans_index_probe();
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE ip = NULL").row_count(), 0u);
  EXPECT_EQ(db.plans_index_probe(), before + 1);
}

TEST_F(PlannerTest, IndexProbeMatchesIntAndRealKeys) {
  // The index hashes INT and REAL through double, matching compare() == 0.
  db.execute("CREATE TABLE m (x REAL)");
  db.execute("CREATE INDEX m_x ON m (x)");
  db.execute("INSERT INTO m VALUES (1.0), (2.5)");
  EXPECT_EQ(db.execute("SELECT x FROM m WHERE x = 1").row_count(), 1u);
  EXPECT_EQ(db.execute("SELECT x FROM m WHERE x = 2.5").row_count(), 1u);
}

// --- index maintenance across writes ---------------------------------------

TEST_F(PlannerTest, InsertAddsRowsToExistingIndex) {
  db.execute(
      "INSERT INTO nodes (mac, name, membership, rack, rank, ip, comment) VALUES "
      "('00:50:8b:aa:bb:cc', 'compute-1-0', 2, 1, 0, '10.255.255.200', '')");
  const ResultSet r = db.execute("SELECT name FROM nodes WHERE ip = '10.255.255.200'");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].as_text(), "compute-1-0");
  expect_planner_matches_scan(db, "SELECT name FROM nodes WHERE membership = 2");
}

TEST_F(PlannerTest, UpdateMovesRowBetweenIndexBuckets) {
  db.execute("UPDATE nodes SET ip = '10.0.0.99' WHERE name = 'compute-0-2'");
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE ip = '10.255.255.243'").row_count(), 0u);
  const ResultSet r = db.execute("SELECT name FROM nodes WHERE ip = '10.0.0.99'");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].as_text(), "compute-0-2");
  // Setting an indexed column to NULL removes the row from the index.
  db.execute("UPDATE nodes SET ip = NULL WHERE name = 'compute-0-2'");
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE ip = '10.0.0.99'").row_count(), 0u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE ip IS NULL").row_count(), 1u);
  expect_planner_matches_scan(db, "SELECT name FROM nodes WHERE ip = '10.255.255.245'");
}

TEST_F(PlannerTest, DeleteRemovesRowsFromIndex) {
  db.execute("DELETE FROM nodes WHERE membership = 2");
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE membership = 2").row_count(), 0u);
  // Surviving rows keep correct (re-numbered) index entries.
  const ResultSet r = db.execute("SELECT name FROM nodes WHERE ip = '10.255.255.246'");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0].as_text(), "web-1-0");
  expect_planner_matches_scan(db, "SELECT name FROM nodes WHERE membership = 4");
}

TEST_F(PlannerTest, DropTableDiscardsIndexesAndRecreateStartsFresh) {
  db.execute("DROP TABLE nodes");
  db.execute("CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, ip TEXT)");
  db.execute("CREATE INDEX nodes_ip ON nodes (ip)");
  db.execute("INSERT INTO nodes (name, ip) VALUES ('a', '1.2.3.4')");
  const auto before = db.plans_index_probe();
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE ip = '1.2.3.4'").row_count(), 1u);
  EXPECT_EQ(db.plans_index_probe(), before + 1);
}

TEST_F(DbTest, CreateIndexErrors) {
  EXPECT_THROW(db.execute("CREATE INDEX i ON ghosts (name)"), LookupError);
  EXPECT_THROW(db.execute("CREATE INDEX i ON nodes (ghost)"), LookupError);
  EXPECT_THROW(db.execute("CREATE INDEX i ON nodes ()"), ParseError);
  EXPECT_THROW(db.execute("CREATE INDEX i nodes (ip)"), ParseError);
  // Re-creating an index is idempotent, with or without IF NOT EXISTS.
  EXPECT_NO_THROW(db.execute("CREATE INDEX i ON nodes (ip)"));
  EXPECT_NO_THROW(db.execute("CREATE INDEX i ON nodes (ip)"));
  EXPECT_NO_THROW(db.execute("CREATE INDEX IF NOT EXISTS i ON nodes (ip)"));
}

TEST_F(DbTest, TableIndexUnitBehaviour) {
  load_paper_tables();
  db.execute("CREATE INDEX nodes_ip ON nodes (ip)");
  const Table& nodes = db.table("nodes");
  // The PRIMARY KEY column is indexed automatically at CREATE TABLE.
  EXPECT_TRUE(nodes.has_index_on(0));
  const auto cols = nodes.indexed_columns();
  EXPECT_NE(std::find(cols.begin(), cols.end(), "id"), cols.end());
  EXPECT_NE(std::find(cols.begin(), cols.end(), "ip"), cols.end());
  // Readers probe through a point-in-time view pinned at a commit ts.
  const auto reader = nodes.reader(db.mvcc_status().commit_ts);
  const auto hits = reader.probe_rows(*nodes.column_index("ip"), Value("10.1.1.1"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ((*hits[0])[2].as_text(), "frontend-0");
  // Probing a column with no index is a caller bug.
  EXPECT_THROW((void)reader.probe_rows(*nodes.column_index("comment"), Value("x")), StateError);
}

// --- prepared statements and the LRU cache ----------------------------------

TEST_F(DbTest, StatementCacheHitsOnRepeatedSql) {
  load_paper_tables();
  const auto misses_before = db.statement_cache_misses();
  const auto hits_before = db.statement_cache_hits();
  db.execute("SELECT name FROM nodes WHERE rack = 1");
  db.execute("SELECT name FROM nodes WHERE rack = 1");
  db.execute("SELECT name FROM nodes WHERE rack = 1");
  EXPECT_EQ(db.statement_cache_misses(), misses_before + 1);
  EXPECT_EQ(db.statement_cache_hits(), hits_before + 2);
}

TEST_F(DbTest, PrepareReturnsReusableStatement) {
  load_paper_tables();
  const Database::PreparedStatement stmt =
      db.prepare("SELECT name FROM nodes WHERE membership = 2");
  EXPECT_EQ(db.execute(*stmt).row_count(), 4u);
  db.execute("DELETE FROM nodes WHERE name = 'compute-0-3'");
  EXPECT_EQ(db.execute(*stmt).row_count(), 3u);
}

TEST_F(DbTest, PreparedStatementSurvivesDropAndRecreate) {
  load_paper_tables();
  const Database::PreparedStatement stmt = db.prepare("SELECT name FROM nodes");
  EXPECT_EQ(db.execute(*stmt).row_count(), 8u);
  db.execute("DROP TABLE nodes");
  EXPECT_THROW(db.execute(*stmt), LookupError);  // parses fine, table is gone
  db.execute("CREATE TABLE nodes (name TEXT)");
  db.execute("INSERT INTO nodes VALUES ('solo')");
  EXPECT_EQ(db.execute(*stmt).row_count(), 1u);
}

TEST_F(DbTest, StatementCacheEvictsLeastRecentlyUsed) {
  load_paper_tables();
  db.execute("SELECT name FROM nodes WHERE rank = -1");
  // Flood the cache past capacity with distinct statements.
  for (int i = 0; i < 300; ++i)
    db.execute("SELECT name FROM nodes WHERE rank = " + std::to_string(i));
  EXPECT_LE(db.statement_cache_size(), 256u);
  // The first statement was least recently used and must have been evicted.
  const auto misses_before = db.statement_cache_misses();
  db.execute("SELECT name FROM nodes WHERE rank = -1");
  EXPECT_EQ(db.statement_cache_misses(), misses_before + 1);
}

TEST_F(DbTest, StatementCacheKeyIsExactText) {
  load_paper_tables();
  const auto misses_before = db.statement_cache_misses();
  db.execute("SELECT name FROM nodes WHERE rack = 1");
  db.execute("select name from nodes where rack = 1");  // different text, new entry
  EXPECT_EQ(db.statement_cache_misses(), misses_before + 2);
}

// --- the change journal (DESIGN.md §10) -------------------------------------

TEST_F(DbTest, JournalBumpsRevisionOncePerRow) {
  const auto base = db.revision("nodes");  // CREATE TABLE truncated the channel
  load_paper_tables();
  EXPECT_EQ(db.revision("nodes"), base + 8);  // one revision per inserted row
  db.execute("UPDATE nodes SET rack = 9 WHERE membership = 2");  // 4 rows
  EXPECT_EQ(db.revision("nodes"), base + 12);
  EXPECT_EQ(db.revision("NODES"), base + 12);  // channel names are case-insensitive
  EXPECT_EQ(db.revision("never_written"), 0u);
}

TEST_F(DbTest, JournalSinceReturnsExactRowDelta) {
  load_paper_tables();
  const auto cursor = db.revision("nodes");
  db.execute("INSERT INTO nodes (name, rack) VALUES ('new-node', 2)");  // id 9
  db.execute("DELETE FROM nodes WHERE name = 'compute-0-3'");           // id 7
  const ChangeDelta delta = db.since("nodes", cursor);
  EXPECT_FALSE(delta.truncated);
  EXPECT_EQ(delta.revision, db.revision("nodes"));
  ASSERT_EQ(delta.changes.size(), 2u);
  EXPECT_EQ(delta.changes[0].op, ChangeOp::kInsert);
  EXPECT_EQ(delta.changes[0].pk.as_int(), 9);
  EXPECT_EQ(delta.changes[1].op, ChangeOp::kDelete);
  EXPECT_EQ(delta.changes[1].pk.as_int(), 7);
  // A cursor already at the head gets an empty, non-truncated delta.
  const ChangeDelta current = db.since("nodes", delta.revision);
  EXPECT_FALSE(current.truncated);
  EXPECT_TRUE(current.changes.empty());
}

TEST_F(DbTest, JournalUpdateReassigningPkSplitsIntoDeletePlusInsert) {
  load_paper_tables();
  const auto cursor = db.revision("nodes");
  db.execute("UPDATE nodes SET id = 100 WHERE name = 'web-1-0'");  // id 8 -> 100
  const ChangeDelta delta = db.since("nodes", cursor);
  ASSERT_EQ(delta.changes.size(), 2u);
  EXPECT_EQ(delta.changes[0].op, ChangeOp::kDelete);
  EXPECT_EQ(delta.changes[0].pk.as_int(), 8);
  EXPECT_EQ(delta.changes[1].op, ChangeOp::kInsert);
  EXPECT_EQ(delta.changes[1].pk.as_int(), 100);
}

TEST_F(DbTest, JournalTruncationForcesFullRescan) {
  db.journal().set_capacity(4);
  const auto base = db.revision("nodes");
  load_paper_tables();  // 8 node rows overflow the bound of 4
  const ChangeDelta stale = db.since("nodes", base);
  EXPECT_TRUE(stale.truncated);
  EXPECT_TRUE(stale.changes.empty());
  EXPECT_EQ(stale.revision, base + 8);  // the cursor can still advance
  // A cursor inside the retained window reads incrementally.
  const ChangeDelta recent = db.since("nodes", base + 4);
  EXPECT_FALSE(recent.truncated);
  EXPECT_EQ(recent.changes.size(), 4u);
  // Shrinking the capacity trims immediately: the window narrows.
  db.journal().set_capacity(2);
  EXPECT_TRUE(db.since("nodes", base + 4).truncated);
  EXPECT_FALSE(db.since("nodes", base + 6).truncated);
}

TEST_F(DbTest, JournalNotifiesOncePerStatement) {
  std::vector<std::pair<std::string, std::uint64_t>> events;
  const std::size_t id = db.subscribe("nodes", [&](std::string_view channel,
                                                   std::uint64_t revision) {
    events.emplace_back(std::string(channel), revision);
  });
  const auto base = db.revision("nodes");
  load_paper_tables();  // one 8-row INSERT into nodes, one into memberships
  ASSERT_EQ(events.size(), 1u);  // batched: one notification for 8 rows
  EXPECT_EQ(events[0].first, "nodes");
  EXPECT_EQ(events[0].second, base + 8);
  db.execute("UPDATE nodes SET rack = 5 WHERE rack = 99");  // matches nothing
  EXPECT_EQ(events.size(), 1u);  // zero rows affected: no notification
  db.unsubscribe(id);
  db.execute("DELETE FROM nodes WHERE name = 'web-1-0'");
  EXPECT_EQ(events.size(), 1u);  // unsubscribed: silence
}

TEST_F(DbTest, JournalWildcardSubscriberSeesEveryChannel) {
  std::vector<std::string> channels;
  db.subscribe(ChangeJournal::kAllChannels,
               [&](std::string_view channel, std::uint64_t) {
                 channels.emplace_back(channel);
               });
  load_paper_tables();
  db.execute("CREATE TABLE scratch (x INT)");
  db.execute("DROP TABLE scratch");
  EXPECT_EQ(channels, (std::vector<std::string>{"nodes", "memberships", "scratch", "scratch"}));
}

TEST_F(DbTest, JournalCallbackMayReenterDatabase) {
  // Subscribers run after the table lock is released, so a callback can
  // issue its own queries — the pattern every config consumer relies on.
  std::size_t rows_seen = 0;
  db.subscribe("nodes", [&](std::string_view, std::uint64_t) {
    rows_seen = db.execute("SELECT id FROM nodes").row_count();
  });
  load_paper_tables();
  EXPECT_EQ(rows_seen, 8u);
}

TEST_F(DbTest, JournalTableWithoutPrimaryKeyAlwaysTruncates) {
  db.execute("CREATE TABLE site (name TEXT, value TEXT)");  // no PRIMARY KEY
  const auto cursor = db.revision("site");
  db.execute("INSERT INTO site VALUES ('Frontend', '10.1.1.1')");
  EXPECT_GT(db.revision("site"), cursor);  // the revision still moves...
  EXPECT_TRUE(db.since("site", cursor).truncated);  // ...but rows have no identity
}

TEST_F(DbTest, JournalDdlTruncatesChannel) {
  load_paper_tables();
  const auto cursor = db.revision("memberships");
  db.execute("DROP TABLE memberships");
  EXPECT_TRUE(db.since("memberships", cursor).truncated);
  db.execute("CREATE TABLE memberships (id INT PRIMARY KEY)");
  EXPECT_TRUE(db.since("memberships", cursor).truncated);
  // Conditional DDL that does nothing journals nothing.
  const auto after = db.revision("memberships");
  db.execute("CREATE TABLE IF NOT EXISTS memberships (id INT PRIMARY KEY)");
  db.execute("DROP TABLE IF EXISTS no_such_table");
  EXPECT_EQ(db.revision("memberships"), after);
  EXPECT_EQ(db.revision("no_such_table"), 0u);
}

TEST_F(DbTest, JournalTouchSignalsCoarseRescanAndNotifies) {
  std::size_t notified = 0;
  db.subscribe("kickstart.graph", [&](std::string_view, std::uint64_t) { ++notified; });
  db.journal().touch("kickstart.graph");
  EXPECT_EQ(notified, 1u);
  EXPECT_EQ(db.revision("kickstart.graph"), 1u);
  EXPECT_TRUE(db.since("kickstart.graph", 0).truncated);  // no row identity
  EXPECT_FALSE(db.since("kickstart.graph", 1).truncated);  // current cursor is fine
}

}  // namespace
}  // namespace rocks::sqldb
