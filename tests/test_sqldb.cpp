// Unit tests for the mini SQL engine, culminating in the paper's own
// cluster-kill queries (Section 6.4) run verbatim.
#include <gtest/gtest.h>

#include "sqldb/engine.hpp"
#include "support/error.hpp"

namespace rocks::sqldb {
namespace {

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db.execute(
        "CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, mac TEXT, name TEXT, "
        "membership INT, rack INT, rank INT, ip TEXT, comment TEXT)");
    db.execute(
        "CREATE TABLE memberships (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, "
        "appliance INT, compute TEXT)");
  }

  void load_paper_tables() {
    // Table II of the paper.
    db.execute(
        "INSERT INTO nodes (mac, name, membership, rack, rank, ip, comment) VALUES "
        "('00:30:c1:d8:ac:80', 'frontend-0',  1, 0, 0, '10.1.1.1',       'Gateway machine'),"
        "('00:01:e7:1a:be:00', 'network-0-0', 4, 0, 0, '10.255.255.253', 'Switch for Cabinet 0'),"
        "('00:50:8b:a5:4d:b1', 'nfs-0-0',     7, 0, 0, '10.255.255.249', 'NFS Server in Cabinet 0'),"
        "('00:50:8b:e0:3a:a7', 'compute-0-0', 2, 0, 0, '10.255.255.245', 'Compute node'),"
        "('00:50:8b:e0:44:5e', 'compute-0-1', 2, 0, 1, '10.255.255.244', 'Compute node'),"
        "('00:50:8b:e0:40:95', 'compute-0-2', 2, 0, 2, '10.255.255.243', 'Compute node'),"
        "('00:50:8b:e0:40:93', 'compute-0-3', 2, 0, 3, '10.255.255.242', 'Compute node'),"
        "('00:50:8b:c5:c7:d3', 'web-1-0',     8, 1, 0, '10.255.255.246', 'Web Server in Cabinet 1')");
    // Table III of the paper (subset of columns we model).
    db.execute(
        "INSERT INTO memberships (name, appliance, compute) VALUES "
        "('Frontend', 1, 'no'), ('Compute', 2, 'yes'), ('External', 1, 'no'),"
        "('Ethernet Switches', 4, 'no'), ('Myrinet Switches', 4, 'no'), ('Power Units', 5, 'no')");
  }

  Database db;
};

TEST_F(DbTest, CreateAndInsertAutoIncrement) {
  load_paper_tables();
  const ResultSet r = db.execute("SELECT id, name FROM nodes ORDER BY id");
  ASSERT_EQ(r.row_count(), 8u);
  EXPECT_EQ(r.rows[0][0].as_int(), 1);
  EXPECT_EQ(r.rows[7][0].as_int(), 8);
  EXPECT_EQ(r.at(0, "name").as_text(), "frontend-0");
}

TEST_F(DbTest, CreateDuplicateTableFails) {
  EXPECT_THROW(db.execute("CREATE TABLE nodes (id INT)"), StateError);
  EXPECT_NO_THROW(db.execute("CREATE TABLE IF NOT EXISTS nodes (id INT)"));
}

TEST_F(DbTest, DropTable) {
  db.execute("DROP TABLE memberships");
  EXPECT_FALSE(db.has_table("memberships"));
  EXPECT_THROW(db.execute("DROP TABLE memberships"), LookupError);
  EXPECT_NO_THROW(db.execute("DROP TABLE IF EXISTS memberships"));
}

TEST_F(DbTest, SelectWhereComparisons) {
  load_paper_tables();
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rack = 1").row_count(), 1u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rank >= 2").row_count(), 2u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rank > 0 AND rack = 0").row_count(), 3u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rack = 1 OR membership = 7").row_count(),
            2u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE NOT membership = 2").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE membership != 2").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE membership <> 2").row_count(), 4u);
}

TEST_F(DbTest, SelectLike) {
  load_paper_tables();
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE name LIKE 'compute-%'").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE name LIKE 'compute-0-_'").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE name NOT LIKE 'compute-%'").row_count(),
            4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE comment LIKE '%Cabinet%'").row_count(), 3u);
}

TEST_F(DbTest, SelectInList) {
  load_paper_tables();
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE membership IN (4, 7, 8)").row_count(), 3u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE membership NOT IN (2)").row_count(), 4u);
}

TEST_F(DbTest, OrderByAndLimit) {
  load_paper_tables();
  const ResultSet r =
      db.execute("SELECT name FROM nodes ORDER BY rack DESC, rank ASC LIMIT 2");
  ASSERT_EQ(r.row_count(), 2u);
  EXPECT_EQ(r.rows[0][0].as_text(), "web-1-0");
}

TEST_F(DbTest, SelectStar) {
  load_paper_tables();
  const ResultSet r = db.execute("SELECT * FROM memberships");
  EXPECT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.row_count(), 6u);
}

TEST_F(DbTest, SelectExpressionArithmetic) {
  load_paper_tables();
  const ResultSet r =
      db.execute("SELECT name, rack * 100 + rank AS position FROM nodes WHERE name = 'web-1-0'");
  EXPECT_EQ(r.at(0, "position").as_int(), 100);
}

TEST_F(DbTest, UpdateAndDelete) {
  load_paper_tables();
  ResultSet r = db.execute("UPDATE nodes SET comment = 'down' WHERE rack = 0 AND rank = 2");
  EXPECT_EQ(r.affected_rows, 1u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE comment = 'down'").row_count(), 1u);
  r = db.execute("DELETE FROM nodes WHERE membership = 2");
  EXPECT_EQ(r.affected_rows, 4u);
  EXPECT_EQ(db.execute("SELECT name FROM nodes").row_count(), 4u);
}

TEST_F(DbTest, UpdateEvaluatesRhsAgainstPreUpdateRow) {
  load_paper_tables();
  db.execute("UPDATE nodes SET rack = rank, rank = rack WHERE name = 'compute-0-3'");
  const ResultSet r = db.execute("SELECT rack, rank FROM nodes WHERE name = 'compute-0-3'");
  EXPECT_EQ(r.rows[0][0].as_int(), 3);  // swap, not sequential assignment
  EXPECT_EQ(r.rows[0][1].as_int(), 0);
}

TEST_F(DbTest, NullSemantics) {
  db.execute("CREATE TABLE t (a INT, b TEXT)");
  db.execute("INSERT INTO t VALUES (NULL, 'x'), (1, NULL)");
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a IS NULL").row_count(), 1u);
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a IS NOT NULL").row_count(), 1u);
  // NULL comparisons are never true.
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a = NULL").row_count(), 0u);
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a != NULL").row_count(), 0u);
}

TEST_F(DbTest, PaperClusterKillRackQuery) {
  load_paper_tables();
  // Verbatim from Section 6.4: kill runaway processes in cabinet 1.
  const auto names = db.query_column("select name from nodes where rack=1");
  EXPECT_EQ(names, (std::vector<std::string>{"web-1-0"}));
}

TEST_F(DbTest, PaperClusterKillJoinQuery) {
  load_paper_tables();
  // Verbatim from Section 6.4: the multi-table join selecting compute nodes.
  const auto names = db.query_column(
      "select nodes.name from nodes,memberships where "
      "nodes.membership = memberships.id and "
      "memberships.name = 'Compute'");
  EXPECT_EQ(names, (std::vector<std::string>{"compute-0-0", "compute-0-1", "compute-0-2",
                                             "compute-0-3"}));
}

TEST_F(DbTest, ExplicitJoinSyntaxMatchesCommaJoin) {
  load_paper_tables();
  const auto a = db.query_column(
      "select nodes.name from nodes join memberships on nodes.membership = memberships.id "
      "where memberships.compute = 'yes'");
  const auto b = db.query_column(
      "select nodes.name from nodes, memberships where nodes.membership = memberships.id "
      "and memberships.compute = 'yes'");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4u);
}

TEST_F(DbTest, TableAliases) {
  load_paper_tables();
  const auto names = db.query_column(
      "select n.name from nodes n, memberships m where n.membership = m.id and "
      "m.name = 'Frontend'");
  EXPECT_EQ(names, (std::vector<std::string>{"frontend-0"}));
}

TEST_F(DbTest, AmbiguousColumnRejected) {
  load_paper_tables();
  // Both tables have "name".
  EXPECT_THROW(db.execute("SELECT name FROM nodes, memberships"), LookupError);
}

TEST_F(DbTest, UnknownColumnAndTableRejected) {
  EXPECT_THROW(db.execute("SELECT nope FROM nodes"), LookupError);
  EXPECT_THROW(db.execute("SELECT x.name FROM nodes"), LookupError);
  EXPECT_THROW(db.execute("SELECT name FROM ghosts"), LookupError);
  EXPECT_THROW(db.execute("INSERT INTO nodes (ghost) VALUES (1)"), LookupError);
}

TEST_F(DbTest, ParseErrors) {
  EXPECT_THROW(db.execute("SELEC name FROM nodes"), ParseError);
  EXPECT_THROW(db.execute("SELECT FROM nodes"), ParseError);
  EXPECT_THROW(db.execute("SELECT name nodes"), ParseError);
  EXPECT_THROW(db.execute("SELECT name FROM nodes WHERE"), ParseError);
  EXPECT_THROW(db.execute(""), ParseError);
  EXPECT_THROW(db.execute("SELECT name FROM nodes; extra"), ParseError);
}

TEST_F(DbTest, StringEscapes) {
  db.execute("CREATE TABLE s (v TEXT)");
  db.execute("INSERT INTO s VALUES ('it''s'), (\"dq\"), ('back\\'slash')");
  const auto vals = db.query_column("SELECT v FROM s");
  EXPECT_EQ(vals, (std::vector<std::string>{"it's", "dq", "back'slash"}));
}

TEST_F(DbTest, TextCoercionOnTypedColumns) {
  db.execute("CREATE TABLE c (n INT)");
  db.execute("INSERT INTO c VALUES ('42')");
  EXPECT_EQ(db.execute("SELECT n FROM c").rows[0][0].as_int(), 42);
}

TEST_F(DbTest, RenderProducesAsciiTable) {
  load_paper_tables();
  const std::string out = db.execute("SELECT id, name FROM memberships ORDER BY id").render();
  EXPECT_NE(out.find("Compute"), std::string::npos);
  EXPECT_NE(out.find("Power Units"), std::string::npos);
}

TEST_F(DbTest, EmptyTableSelects) {
  EXPECT_EQ(db.execute("SELECT * FROM nodes").row_count(), 0u);
  EXPECT_EQ(db.execute("SELECT nodes.name FROM nodes, memberships").row_count(), 0u);
  // Ambiguity is detected even with no rows to scan.
  EXPECT_THROW(db.execute("SELECT name FROM nodes, memberships"), LookupError);
}

TEST_F(DbTest, QueryColumnRequiresSingleColumn) {
  load_paper_tables();
  EXPECT_THROW(db.query_column("SELECT id, name FROM nodes"), StateError);
}

TEST_F(DbTest, ArithmeticEdgeCases) {
  load_paper_tables();
  // Division/modulo by zero yield NULL (so rows drop out of WHERE).
  EXPECT_EQ(db.execute("SELECT name FROM nodes WHERE rank / rank > 0").row_count(), 3u)
      << "rank=0 rows produce NULL and are filtered";
  EXPECT_EQ(db.execute("SELECT 7 % 3 AS m FROM memberships LIMIT 1").rows[0][0].as_int(), 1);
  EXPECT_EQ(db.execute("SELECT -rank AS n FROM nodes WHERE name = 'compute-0-3'")
                .rows[0][0]
                .as_int(),
            -3);
  // Mixed int/real arithmetic promotes to real.
  const auto r = db.execute("SELECT rank + 0.5 AS x FROM nodes WHERE name = 'compute-0-1'");
  EXPECT_DOUBLE_EQ(r.rows[0][0].as_real(), 1.5);
}

TEST_F(DbTest, OrderByExpressionAndLimitZero) {
  load_paper_tables();
  const auto r = db.execute(
      "SELECT name FROM nodes WHERE membership = 2 ORDER BY rack * 10 + rank DESC");
  ASSERT_EQ(r.row_count(), 4u);
  EXPECT_EQ(r.rows[0][0].as_text(), "compute-0-3");
  EXPECT_EQ(db.execute("SELECT name FROM nodes LIMIT 0").row_count(), 0u);
}

TEST_F(DbTest, UpdateWithoutWhereTouchesAllRows) {
  load_paper_tables();
  const auto r = db.execute("UPDATE memberships SET compute = 'no'");
  EXPECT_EQ(r.affected_rows, 6u);
  EXPECT_EQ(db.execute("SELECT name FROM memberships WHERE compute = 'yes'").row_count(), 0u);
}

TEST_F(DbTest, SelfJoinWithAliases) {
  load_paper_tables();
  // Pairs of compute nodes in the same rack with adjacent ranks.
  const auto r = db.execute(
      "SELECT a.name, b.name FROM nodes a, nodes b WHERE a.rack = b.rack AND "
      "a.membership = 2 AND b.membership = 2 AND b.rank = a.rank + 1 ORDER BY a.rank");
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.rows[0][0].as_text(), "compute-0-0");
  EXPECT_EQ(r.rows[0][1].as_text(), "compute-0-1");
}

TEST_F(DbTest, ThreeTableJoin) {
  load_paper_tables();
  db.execute("CREATE TABLE racks (id INT, location TEXT)");
  db.execute("INSERT INTO racks VALUES (0, 'machine room A'), (1, 'machine room B')");
  const auto r = db.query_column(
      "SELECT racks.location FROM nodes, memberships, racks WHERE "
      "nodes.membership = memberships.id AND nodes.rack = racks.id AND "
      "memberships.name = 'Compute' AND nodes.rank = 0");
  EXPECT_EQ(r, (std::vector<std::string>{"machine room A"}));
}

TEST_F(DbTest, InListWithNullNeedleNeverMatches) {
  db.execute("CREATE TABLE t (a INT)");
  db.execute("INSERT INTO t VALUES (NULL), (1)");
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a IN (1, 2)").row_count(), 1u);
  EXPECT_EQ(db.execute("SELECT a FROM t WHERE a NOT IN (99)").row_count(), 1u);
}

}  // namespace
}  // namespace rocks::sqldb
