// The replicated control plane (DESIGN.md §12): shipment codec, WAL
// shipping and byte-identical follower replay, epoch fencing, commit modes
// (quorum-ack vs async loss windows), reconnect backoff, ship-log overflow
// re-bootstrap, the leader-kill chaos sweep with shadow-replay verification,
// kickstart continuity across a failover, and the operator reports.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "batch/accounting.hpp"
#include "batch/scheduler.hpp"
#include "cluster/cluster.hpp"
#include "kickstart/server.hpp"
#include "netsim/fault.hpp"
#include "replication/control_plane.hpp"
#include "replication/follower.hpp"
#include "replication/shipment.hpp"
#include "sqldb/wal.hpp"
#include "support/crashpoint.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "tools/cluster_tools.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/path.hpp"

namespace rocks {
namespace {

using replication::Ack;
using replication::CommitMode;
using replication::ControlPlane;
using replication::ControlPlaneConfig;
using replication::Follower;
using replication::FollowerConfig;
using replication::Shipment;
using sqldb::Database;
using support::CrashError;
using support::CrashPoints;

constexpr const char* kDir = "/state/db";

class ReplicationTest : public ::testing::Test {
 protected:
  void TearDown() override { CrashPoints::instance().disarm_all(); }
};

/// A bare durable leader database with a tiny schema.
struct BareLeader {
  vfs::FileSystem disk;
  Database db;
  BareLeader() {
    db.open_durable(disk, kDir);
    db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  }
  void insert(const std::string& v) {
    db.execute("INSERT INTO t (v) VALUES ('" + v + "')");
  }
};

// --- codec -------------------------------------------------------------------

TEST_F(ReplicationTest, ShipmentAndAckRoundTripAndRejectTruncation) {
  Shipment shipment;
  shipment.epoch = 7;
  shipment.groups = {"alpha", std::string("\x00\x01z", 3), ""};
  const std::string wire = replication::encode_shipment(shipment);
  const Shipment back = replication::decode_shipment(wire);
  EXPECT_EQ(back.epoch, 7u);
  EXPECT_EQ(back.groups, shipment.groups);
  EXPECT_THROW(replication::decode_shipment(wire.substr(0, wire.size() - 2)), ParseError);

  const Ack ack{9, 123, true, ""};
  const Ack ack_back = replication::decode_ack(replication::encode_ack(ack));
  EXPECT_EQ(ack_back.epoch, 9u);
  EXPECT_EQ(ack_back.last_lsn, 123u);
  EXPECT_TRUE(ack_back.accepted);
}

// --- shipping + replay -------------------------------------------------------

TEST_F(ReplicationTest, FollowerReplaysShippedCommitsByteIdentically) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim);
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});

  for (int i = 0; i < 10; ++i) leader.insert("row");
  leader.db.execute("UPDATE t SET v = 'updated' WHERE id = 3");
  leader.db.execute("DELETE FROM t WHERE id = 7");
  cp.pump();

  Follower& follower = cp.follower(0);
  EXPECT_EQ(follower.last_lsn(), leader.db.last_lsn());
  EXPECT_EQ(follower.db().dump_state(), leader.db.dump_state());
  EXPECT_GT(follower.shipments_applied(), 0u);
  const auto status = cp.status();
  EXPECT_EQ(status.followers[0].acked_lsn, leader.db.last_lsn());
  EXPECT_GT(status.shipped_groups, 0u);

  // Incremental: one more statement ships one more group, stays identical.
  leader.insert("tail");
  cp.pump();
  EXPECT_EQ(follower.db().dump_state(), leader.db.dump_state());
}

TEST_F(ReplicationTest, DuplicateDeliveryIsIdempotent) {
  netsim::Simulator sim;
  BareLeader leader;
  leader.insert("once");
  leader.db.wal_flush();
  const auto groups = sqldb::wal_groups_after(leader.db.wal_image(), 0);
  ASSERT_FALSE(groups.empty());

  Follower follower(sim, nullptr, FollowerConfig{.name = "replica-a"});
  Shipment shipment;
  shipment.epoch = 1;
  for (const auto& group : groups) shipment.groups.push_back(group.bytes);
  const Ack first = follower.apply_shipment(shipment);
  ASSERT_TRUE(first.accepted) << first.error;
  const Ack second = follower.apply_shipment(shipment);  // redelivery
  EXPECT_TRUE(second.accepted) << second.error;
  EXPECT_EQ(second.last_lsn, first.last_lsn);
  EXPECT_EQ(follower.db().dump_state(), leader.db.dump_state());
}

TEST_F(ReplicationTest, FollowerFencesLocalWritesWithLeaderHint) {
  netsim::Simulator sim;
  Follower follower(sim, nullptr, FollowerConfig{.name = "replica-a"});
  try {
    follower.db().execute("CREATE TABLE t (id INT)");
    FAIL() << "a follower must fence local DML";
  } catch (const StateError& error) {
    EXPECT_NE(std::string(error.what()).find("read-only replica"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("leader"), std::string::npos);
  }
  // Reads are the follower's job: SELECT still works once state arrives.
  EXPECT_NO_THROW(follower.db().table_names());
}

// --- epoch fencing -----------------------------------------------------------

TEST_F(ReplicationTest, EpochsAdoptForwardAndFenceBackward) {
  netsim::Simulator sim;
  Follower follower(sim, nullptr, FollowerConfig{.name = "replica-a"});
  EXPECT_TRUE(follower.apply_shipment(Shipment{5, {}}).accepted);
  EXPECT_EQ(follower.epoch(), 5u);
  const Ack fenced = follower.apply_shipment(Shipment{4, {}});
  EXPECT_FALSE(fenced.accepted);
  EXPECT_NE(fenced.error.find("fenced"), std::string::npos);
  EXPECT_EQ(follower.fenced(), 1u);
  EXPECT_EQ(follower.epoch(), 5u);  // a stale leader cannot regress the epoch
}

TEST_F(ReplicationTest, ResurrectedStaleLeaderCannotCommitAnywhere) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim);
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});
  cp.add_follower(FollowerConfig{.name = "replica-b"});
  leader.insert("committed");
  cp.pump();

  cp.kill_leader();
  EXPECT_FALSE(cp.has_leader());
  const std::string promoted = cp.promote();
  EXPECT_EQ(cp.epoch(), 2u);
  EXPECT_EQ(promoted, "replica-a");  // equal LSNs: deterministic name tiebreak

  // The old leader rises from the dead and re-ships at its old epoch —
  // with real data, not just a heartbeat.
  leader.insert("zombie write");
  leader.db.wal_flush();
  const auto groups = sqldb::wal_groups_after(leader.db.wal_image(), 0);
  Shipment stale;
  stale.epoch = 1;
  stale.groups.push_back(groups.back().bytes);
  const std::uint64_t lsn_before = cp.follower(1).last_lsn();
  const auto acks = cp.broadcast(stale);
  ASSERT_EQ(acks.size(), 1u);  // the promoted leader is no longer a follower
  EXPECT_FALSE(acks[0].accepted);
  EXPECT_NE(acks[0].error.find("fenced"), std::string::npos);
  EXPECT_EQ(cp.follower(1).last_lsn(), lsn_before);  // nothing moved
}

// --- commit modes ------------------------------------------------------------

TEST_F(ReplicationTest, QuorumBarrierRefusesWithoutMajority) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim, ControlPlaneConfig{.mode = CommitMode::kQuorum});
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});
  cp.add_follower(FollowerConfig{.name = "replica-b"});
  leader.insert("first");
  cp.commit_barrier();  // both reachable: majority trivially holds

  cp.link(0).sever();
  cp.link(1).sever();
  leader.insert("unackable");
  EXPECT_THROW(cp.commit_barrier(), UnavailableError);
  EXPECT_EQ(cp.status().quorum_failures, 1u);

  // One follower back is a majority (leader + 1 of 2 followers = 2 of 3).
  cp.link(0).restore();
  sim.run_until(sim.now() + 120.0);  // past the reconnect backoff
  EXPECT_NO_THROW(cp.commit_barrier());
  EXPECT_EQ(cp.follower(0).last_lsn(), leader.db.last_lsn());
}

TEST_F(ReplicationTest, QuorumAckLosesNoAcknowledgedCommit) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim, ControlPlaneConfig{.mode = CommitMode::kQuorum});
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});
  cp.add_follower(FollowerConfig{.name = "replica-b"});
  for (int i = 0; i < 8; ++i) {
    leader.insert("acked");
    cp.commit_barrier();
  }
  const std::uint64_t acked_lsn = leader.db.last_lsn();
  leader.insert("never acked");  // in the leader's WAL, never barriered

  cp.kill_leader();
  // The elected follower's replayed position is exactly the acked LSN...
  EXPECT_EQ(cp.follower(0).last_lsn(), acked_lsn);
  cp.promote();
  // ...and after promotion (which commits its own frontend bootstrap at the
  // new epoch) every acknowledged commit survives; only the unacked tail is
  // gone.
  Database& promoted = cp.follower(0).db();
  EXPECT_EQ(promoted.execute("SELECT id FROM t WHERE v = 'acked'").row_count(), 8u);
  EXPECT_EQ(promoted.execute("SELECT id FROM t WHERE v = 'never acked'").row_count(), 0u);
}

TEST_F(ReplicationTest, AsyncModeLossWindowIsTheUnshippedTail) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim, ControlPlaneConfig{.mode = CommitMode::kAsync});
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});
  for (int i = 0; i < 5; ++i) {
    leader.insert("shipped");
    cp.commit_barrier();  // async: returns immediately, ships nothing
  }
  cp.pump();  // the background shipper catches up here...
  const std::uint64_t shipped_lsn = leader.db.last_lsn();
  for (int i = 0; i < 3; ++i) {
    leader.insert("windowed");
    cp.commit_barrier();
  }
  cp.kill_leader();
  // ...and the loss window is exactly the commits after the last pump: three
  // statements, one LSN each.
  EXPECT_EQ(cp.follower(0).last_lsn(), shipped_lsn);
  EXPECT_EQ(leader.db.last_lsn() - cp.follower(0).last_lsn(), 3u);
  cp.promote();
  Database& promoted = cp.follower(0).db();
  EXPECT_EQ(promoted.execute("SELECT id FROM t WHERE v = 'shipped'").row_count(), 5u);
  EXPECT_EQ(promoted.execute("SELECT id FROM t WHERE v = 'windowed'").row_count(), 0u);
}

// --- reconnect backoff -------------------------------------------------------

TEST_F(ReplicationTest, SeveredLinkBacksOffThenCatchesUp) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim);
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});
  leader.insert("synced");
  cp.pump();
  ASSERT_EQ(cp.follower(0).last_lsn(), leader.db.last_lsn());

  cp.link(0).sever();
  leader.insert("while dark");
  cp.pump();  // delivery refused: attempt 1, retry in exactly base seconds
  EXPECT_FALSE(cp.status().followers[0].connected);
  EXPECT_EQ(cp.link(0).stats().refusals, 1u);
  cp.pump();  // before retry_at: skipped, no extra refusal
  EXPECT_EQ(cp.link(0).stats().refusals, 1u);

  sim.run_until(5.0);  // the BackoffPolicy base for attempt 1
  cp.pump();           // attempt 2 fails; delay doubles (plus jitter)
  EXPECT_EQ(cp.link(0).stats().refusals, 2u);

  cp.link(0).restore();
  sim.run_until(30.0);  // past any jittered second-attempt delay
  cp.pump();
  const auto status = cp.status();
  EXPECT_TRUE(status.followers[0].connected);
  EXPECT_EQ(status.followers[0].reconnects, 1u);
  EXPECT_EQ(cp.follower(0).db().dump_state(), leader.db.dump_state());
}

TEST_F(ReplicationTest, FaultInjectorCutsAndRestoresLinksOnSchedule) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim);
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});
  cp.start_pump_timer(1.0);

  netsim::FaultPlan plan;
  plan.link_cuts.push_back({.at = 2.0, .link = 0, .restore_after = 90.0});
  netsim::FaultInjector faults(sim, plan);
  faults.wire_links(cp.links());
  faults.arm();

  // Commits land while the link is down; the pump timer keeps retrying on
  // its backoff and drains everything once the cut heals.
  for (int i = 0; i < 6; ++i)
    sim.schedule(1.5 + i, [&leader, i] { leader.insert("burst"); });
  sim.run_until(200.0);
  cp.stop_pump_timer();

  EXPECT_EQ(faults.stats().link_cuts, 1u);
  EXPECT_EQ(faults.stats().link_restores, 1u);
  EXPECT_GT(cp.link(0).stats().refusals, 0u);
  const auto status = cp.status();
  EXPECT_TRUE(status.followers[0].connected);
  EXPECT_GE(status.followers[0].reconnects, 1u);
  EXPECT_EQ(cp.follower(0).db().dump_state(), leader.db.dump_state());
}

// --- ship-log overflow -------------------------------------------------------

TEST_F(ReplicationTest, LogOverflowForcesSnapshotBootstrap) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim, ControlPlaneConfig{.max_log_groups = 4});
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});
  leader.insert("early");
  cp.pump();
  ASSERT_EQ(cp.follower(0).last_lsn(), leader.db.last_lsn());

  cp.link(0).sever();
  for (int i = 0; i < 20; ++i) leader.insert("flood");  // evicts far past the cursor
  cp.link(0).restore();
  sim.run_until(sim.now() + 120.0);
  cp.pump();

  const auto status = cp.status();
  EXPECT_GT(status.log_evictions, 0u);
  EXPECT_GE(status.bootstraps, 1u);
  EXPECT_EQ(cp.follower(0).bootstraps(), 1u);
  EXPECT_EQ(cp.follower(0).db().dump_state(), leader.db.dump_state());

  // The bootstrap left a durable replica: its own recovery reproduces it.
  vfs::FileSystem shadow;
  shadow.copy_tree(cp.follower(0).disk(), kDir, kDir);
  Database replayed;
  replayed.open_durable(shadow, kDir);
  EXPECT_EQ(replayed.dump_state(), leader.db.dump_state());
}

// --- the chaos drill ---------------------------------------------------------

cluster::ClusterConfig durable_config(vfs::FileSystem& state) {
  cluster::ClusterConfig config;
  config.synth.filler_packages = 20;
  config.frontend.state_fs = &state;
  return config;
}

TEST_F(ReplicationTest, LeaderKillSweepNeverLosesAckedRegistrations) {
  // Kill the leader at every registered crash point of the registration
  // path — including the ship loop itself — then promote and prove the
  // acked batch survived, byte-identically, and the old leader is fenced.
  const std::vector<std::pair<std::string, int>> points = {
      {"insert_ethers.batch", 3}, {"wal.flush.before", 1}, {"wal.flush.torn", 1},
      {"wal.flush.after", 1},     {"replication.ship", 1},
  };
  for (const auto& [point, countdown] : points) {
    SCOPED_TRACE(point);
    auto& crash = CrashPoints::instance();
    crash.disarm_all();

    vfs::FileSystem state;
    cluster::Cluster cluster(durable_config(state));
    auto& frontend = cluster.frontend();
    ControlPlane cp(cluster.sim(), ControlPlaneConfig{.mode = CommitMode::kQuorum});
    cp.lead(frontend.db(), "frontend-0");
    cp.add_follower(FollowerConfig{.name = "replica-a"});
    cp.add_follower(FollowerConfig{.name = "replica-b", .ip = Ipv4{10, 1, 1, 3}});
    cp.pump();  // followers absorb the bootstrapped schema + frontend row
    frontend.set_commit_barrier([&cp] { cp.commit_barrier(); });

    // Chunk A: registered AND acknowledged (the barrier returned).
    std::vector<Mac> acked_macs;
    for (int i = 0; i < 4; ++i) acked_macs.push_back(Mac{0x00508BA00000ULL + i});
    ASSERT_EQ(cluster.insert_ethers().register_batch(acked_macs), 4);

    // Chunk B: the frontend dies somewhere inside the burst.
    std::vector<Mac> doomed_macs;
    for (int i = 0; i < 4; ++i) doomed_macs.push_back(Mac{0x00508BB00000ULL + i});
    crash.arm(point, countdown);
    EXPECT_THROW(cluster.insert_ethers().register_batch(doomed_macs), CrashError);
    crash.disarm_all();

    cp.kill_leader();
    const std::string promoted_name = cp.promote();
    EXPECT_EQ(cp.epoch(), 2u);
    Follower& promoted = cp.follower(promoted_name == "replica-a" ? 0 : 1);
    Follower& remaining = cp.follower(promoted_name == "replica-a" ? 1 : 0);
    EXPECT_TRUE(promoted.leader());

    // Every acknowledged registration is on the promoted leader.
    for (const Mac& mac : acked_macs)
      EXPECT_EQ(promoted.db()
                    .execute("SELECT id FROM nodes WHERE mac = '" + mac.to_string() + "'")
                    .row_count(),
                1u)
          << mac.to_string();

    // Shadow replay: recovering the promoted follower's disk from scratch
    // reproduces its state byte-for-byte — what it acked is truly durable.
    promoted.db().wal_flush();
    vfs::FileSystem shadow;
    shadow.copy_tree(promoted.disk(), kDir, kDir);
    Database replayed;
    replayed.open_durable(shadow, kDir);
    EXPECT_EQ(replayed.dump_state(), promoted.db().dump_state());

    // The resurrected stale leader is fenced everywhere, with no state
    // change anywhere.
    frontend.db().wal_flush();
    const auto groups = sqldb::wal_groups_after(frontend.db().wal_image(), 0);
    ASSERT_FALSE(groups.empty());
    Shipment stale;
    stale.epoch = 1;
    stale.groups.push_back(groups.back().bytes);
    const std::uint64_t before = remaining.last_lsn();
    for (const Ack& ack : cp.broadcast(stale)) {
      EXPECT_FALSE(ack.accepted);
      EXPECT_NE(ack.error.find("fenced"), std::string::npos);
    }
    EXPECT_EQ(remaining.last_lsn(), before);

    // Life goes on: the promoted leader commits under quorum and the
    // remaining follower replays it.
    kickstart::insert_node_row(promoted.db(), "00:50:8b:ff:00:01", "compute-9-9", 2, 9, 9,
                               "10.255.9.9");
    cp.commit_barrier();
    EXPECT_EQ(remaining.db()
                  .execute("SELECT id FROM nodes WHERE name = 'compute-9-9'")
                  .row_count(),
              1u);
  }
}

// --- failover install continuity ---------------------------------------------

TEST_F(ReplicationTest, PromotedFollowerServesKickstartAndInstallsFinish) {
  vfs::FileSystem state;
  cluster::Cluster cluster(durable_config(state));
  auto& frontend = cluster.frontend();
  ControlPlane cp(cluster.sim(), ControlPlaneConfig{.mode = CommitMode::kQuorum});
  cp.lead(frontend.db(), "frontend-0");
  FollowerConfig config;
  config.name = "frontend-1";
  config.syslog = &cluster.syslog();
  cp.add_follower(config, &cluster.distro());  // a full serving replica
  cp.pump();
  frontend.set_commit_barrier([&cp] { cp.commit_barrier(); });

  for (int i = 0; i < 3; ++i) cluster.add_node();
  cluster.integrate_all();
  for (cluster::Node* node : cluster.nodes()) ASSERT_TRUE(node->is_running());
  const auto fingerprint = cluster.nodes()[0]->software_fingerprint();

  // Reinstall everything; the frontend dies while the nodes are still
  // booting into the installer.
  for (cluster::Node* node : cluster.nodes()) cluster.shoot_node(node->hostname());
  cluster.sim().run_until(cluster.sim().now() + 30.0);
  cp.kill_leader();
  frontend.set_commit_barrier({});
  frontend.kickstart_server().set_availability_probe([] { return false; });

  const std::string promoted = cp.promote();
  EXPECT_EQ(promoted, "frontend-1");
  Follower& follower = cp.follower(0);
  // The follower's replicated database answers the CGI during the failover.
  for (cluster::Node* node : cluster.nodes()) {
    const std::string profile = follower.kickstart_server().handle_request(node->ip());
    EXPECT_NE(profile.find(node->hostname()), std::string::npos);
  }
  // Re-point the installing nodes at the promoted frontend; their next
  // DHCP/kickstart attempt lands there — no power cycle needed.
  for (cluster::Node* node : cluster.nodes()) node->repoint(follower.environment());

  cluster.run_until_stable();
  for (cluster::Node* node : cluster.nodes()) {
    EXPECT_TRUE(node->is_running()) << node->hostname();
    EXPECT_EQ(node->install_count(), 2);
    // Same distribution, same package set: the promoted frontend installs
    // exactly what the dead one would have.
    EXPECT_EQ(node->software_fingerprint(), fingerprint);
  }
}

// --- scheduler failover ------------------------------------------------------

TEST_F(ReplicationTest, PromotedFollowerResumesSchedulerWithoutLosingOrDoublingJobs) {
  // The batch queue lives in frontend tables, so it rides the same WAL
  // shipping as everything else: kill the leader mid-workload, promote, and
  // a scheduler over the promoted database resumes the exact committed
  // queue — the running job keeps its original start (never started twice),
  // every queued job eventually runs, and the ledger stays exactly-once.
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim, ControlPlaneConfig{.mode = CommitMode::kQuorum});
  cp.lead(leader.db, "frontend-0");
  cp.add_follower(FollowerConfig{.name = "frontend-1"});
  cp.pump();

  auto hostname = [](std::size_t i) { return strings::cat("n0", i); };
  auto sched = std::make_unique<batch::Scheduler>(leader.db, sim);
  for (std::size_t i = 0; i < 4; ++i) sched->register_node(hostname(i));
  sched->resume();

  batch::JobSpec wide;
  wide.name = "resident";
  wide.nodes = 4;
  wide.walltime_seconds = 120.0;
  const batch::JobId resident = sched->submit(wide);
  std::vector<batch::JobId> queued;
  for (int i = 0; i < 4; ++i) {
    batch::JobSpec spec;
    spec.name = strings::cat("q", i);
    spec.nodes = 2;
    spec.walltime_seconds = 30.0;
    queued.push_back(sched->submit(spec));
  }
  sim.run_until(50.0);
  ASSERT_EQ(sched->job(resident)->state, batch::JobState::kRunning);
  const double original_start = sched->job(resident)->started;
  cp.pump();  // the committed queue is on the follower

  // The frontend process dies mid-run: its pending completion events die
  // with it, and the follower takes over.
  cp.kill_leader();
  sched.reset();
  const std::string promoted = cp.promote();
  EXPECT_EQ(promoted, "frontend-1");
  Database& pdb = cp.follower(0).db();
  EXPECT_EQ(pdb.execute("SELECT id FROM sched_jobs").row_count(), 5u);

  batch::Scheduler sched2(pdb, sim);
  EXPECT_EQ(sched2.live_count(), 5u);
  for (std::size_t i = 0; i < 4; ++i) sched2.register_node(hostname(i));
  sched2.resume();
  // Resumed, not restarted: same run, same original start timestamp.
  EXPECT_EQ(sched2.job(resident)->state, batch::JobState::kRunning);
  EXPECT_DOUBLE_EQ(sched2.job(resident)->started, original_start);
  EXPECT_EQ(sched2.stats().started, 0u);

  sched2.drain();
  const batch::AccountingTotals totals = batch::Accounting::totals(pdb);
  EXPECT_EQ(totals.completed, 5u);
  EXPECT_EQ(totals.cancelled, 0u);
  EXPECT_EQ(totals.duplicate_ids, 0u);
  const auto record = batch::Accounting::lookup(pdb, resident);
  ASSERT_TRUE(record.has_value());
  EXPECT_DOUBLE_EQ(record->started, original_start);
  EXPECT_DOUBLE_EQ(record->ended, 120.0);  // the original deadline held
  for (batch::JobId id : queued) EXPECT_TRUE(batch::Accounting::has(pdb, id));
}

// --- concurrency (TSan) ------------------------------------------------------

TEST_F(ReplicationTest, ConcurrentReadsAndShippingStayCoherent) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim);
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});
  cp.pump();

  std::vector<std::thread> threads;
  // Writers commit against the leader (the WAL sink runs under its
  // exclusive lock, feeding the ship log from both threads)...
  for (int w = 0; w < 2; ++w)
    threads.emplace_back([&leader, w] {
      for (int i = 0; i < 50; ++i) leader.insert(strings::cat("w", w, "-", i));
    });
  // ...readers hammer the follower's SELECT path...
  std::atomic<bool> done{false};
  for (int r = 0; r < 2; ++r)
    threads.emplace_back([&cp, &done] {
      while (!done.load()) {
        if (cp.follower(0).db().has_table("t"))
          (void)cp.follower(0).db().execute("SELECT id FROM t").row_count();
      }
    });
  // ...while the main thread pumps shipments into it.
  for (int i = 0; i < 200; ++i) cp.pump();
  threads[0].join();
  threads[1].join();
  done.store(true);
  threads[2].join();
  threads[3].join();

  cp.pump();
  EXPECT_EQ(cp.follower(0).last_lsn(), leader.db.last_lsn());
  EXPECT_EQ(cp.follower(0).db().dump_state(), leader.db.dump_state());
}

// --- operator reports --------------------------------------------------------

TEST_F(ReplicationTest, StatusReportsRenderForOperators) {
  netsim::Simulator sim;
  BareLeader leader;
  ControlPlane cp(sim);
  cp.lead(leader.db, "leader");
  cp.add_follower(FollowerConfig{.name = "replica-a"});
  leader.insert("x");
  cp.pump();

  const std::string report = tools::ClusterTools::replication_report(cp.status());
  EXPECT_NE(report.find("leader=leader"), std::string::npos);
  EXPECT_NE(report.find("epoch=1"), std::string::npos);
  EXPECT_NE(report.find("mode=quorum-ack"), std::string::npos);
  EXPECT_NE(report.find("replica-a"), std::string::npos);

  vfs::FileSystem shadow;
  shadow.copy_tree(cp.follower(0).disk(), kDir, kDir);
  Database replayed;
  const sqldb::RecoveryReport recovery = replayed.open_durable(shadow, kDir);
  const std::string recovery_text = tools::ClusterTools::recovery_report(recovery);
  EXPECT_NE(recovery_text.find("wal:"), std::string::npos);
  EXPECT_NE(recovery_text.find("position: LSN"), std::string::npos);
}

}  // namespace
}  // namespace rocks
