// Unit tests for the kickstart engine: node files, the graph, traversal,
// profile rendering/parsing, the generator, and the CGI server against the
// paper's own tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "kickstart/defaults.hpp"
#include "kickstart/frontend_form.hpp"
#include "kickstart/generator.hpp"
#include "kickstart/graph.hpp"
#include "kickstart/nodefile.hpp"
#include "kickstart/profile.hpp"
#include "kickstart/server.hpp"
#include "rpm/synth.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::kickstart {
namespace {

TEST(NodeFileTest, ParsesFigure2) {
  const NodeFile file = NodeFile::parse("dhcp-server", figure2_dhcp_server_xml());
  EXPECT_EQ(file.name(), "dhcp-server");
  EXPECT_EQ(file.description(), "Setup the DHCP server for the cluster");
  ASSERT_EQ(file.packages().size(), 1u);
  EXPECT_EQ(file.packages()[0].name, "dhcp");
  ASSERT_EQ(file.posts().size(), 1u);
  EXPECT_NE(file.posts()[0].body.find("DHCPD_INTERFACES"), std::string::npos);
}

TEST(NodeFileTest, RoundTripsThroughXml) {
  const NodeFile original = NodeFile::parse("dhcp-server", figure2_dhcp_server_xml());
  const NodeFile reparsed = NodeFile::parse("dhcp-server", original.to_xml());
  EXPECT_EQ(reparsed.description(), original.description());
  ASSERT_EQ(reparsed.packages().size(), original.packages().size());
  EXPECT_EQ(reparsed.packages()[0].name, original.packages()[0].name);
  ASSERT_EQ(reparsed.posts().size(), original.posts().size());
  EXPECT_EQ(strings::trim(reparsed.posts()[0].body), strings::trim(original.posts()[0].body));
}

TEST(NodeFileTest, ArchSpecificEntries) {
  NodeFile file("boot");
  file.add_package("grub", "i386");
  file.add_package("elilo", "ia64");
  file.add_package("kernel");
  EXPECT_EQ(file.packages_for("i386").size(), 2u);
  EXPECT_EQ(file.packages_for("ia64").size(), 2u);
  EXPECT_EQ(file.packages_for("ia64")[0]->name, "elilo");
}

TEST(NodeFileTest, RejectsBadDocuments) {
  EXPECT_THROW(NodeFile::parse("x", "<WRONG/>"), ParseError);
  EXPECT_THROW(NodeFile::parse("x", "<KICKSTART><PACKAGE></PACKAGE></KICKSTART>"), ParseError);
  EXPECT_THROW(NodeFile::parse("x", "<KICKSTART><UNKNOWN/></KICKSTART>"), ParseError);
}

TEST(NodeFileSetTest, LookupSemantics) {
  NodeFileSet set;
  set.add(NodeFile("mpi"));
  EXPECT_TRUE(set.contains("mpi"));
  EXPECT_FALSE(set.contains("nope"));
  EXPECT_THROW((void)set.get("nope"), LookupError);
  EXPECT_EQ(set.names(), (std::vector<std::string>{"mpi"}));
}

TEST(GraphTest, ParseAndAppliances) {
  const Graph g = Graph::parse(R"(<?XML VERSION="1.0"?>
    <GRAPH>
      <DESCRIPTION>test</DESCRIPTION>
      <EDGE FROM="compute" TO="mpi"/>
      <EDGE FROM="frontend" TO="mpi"/>
      <EDGE FROM="mpi" TO="c-development"/>
    </GRAPH>)");
  EXPECT_EQ(g.edges().size(), 3u);
  EXPECT_EQ(g.appliances(), (std::vector<std::string>{"compute", "frontend"}));
}

TEST(GraphTest, TraversalMatchesPaperFigure4Walk) {
  // "if the machine was configured to be a compute appliance, the traversal
  // of the graph would be the compute, mpi, and c-development node files".
  Graph g;
  g.add_edge("compute", "mpi");
  g.add_edge("mpi", "c-development");
  g.add_edge("frontend", "mpi");
  g.add_edge("frontend", "x11");
  EXPECT_EQ(g.traverse("compute"),
            (std::vector<std::string>{"compute", "mpi", "c-development"}));
  EXPECT_EQ(g.traverse("frontend"),
            (std::vector<std::string>{"frontend", "mpi", "c-development", "x11"}));
}

TEST(GraphTest, SharedModuleVisitedOnce) {
  Graph g;
  g.add_edge("compute", "a");
  g.add_edge("compute", "b");
  g.add_edge("a", "common");
  g.add_edge("b", "common");
  const auto order = g.traverse("compute");
  EXPECT_EQ(order, (std::vector<std::string>{"compute", "a", "common", "b"}));
}

TEST(GraphTest, ArchConditionalEdges) {
  Graph g;
  g.add_edge("compute", "myrinet", "i386");
  g.add_edge("compute", "base");
  EXPECT_EQ(g.traverse("compute", "i386").size(), 3u);
  EXPECT_EQ(g.traverse("compute", "ia64").size(), 2u);  // myrinet edge filtered
  EXPECT_EQ(g.traverse("compute").size(), 3u);          // no arch: everything
}

TEST(GraphTest, CycleToleratedInTraversalReportedByLint) {
  Graph g;
  g.add_edge("a", "b");
  g.add_edge("b", "a");
  EXPECT_TRUE(g.has_cycle());
  EXPECT_EQ(g.traverse("a"), (std::vector<std::string>{"a", "b"}));
  Graph acyclic;
  acyclic.add_edge("a", "b");
  EXPECT_FALSE(acyclic.has_cycle());
}

TEST(GraphTest, UndefinedModulesLint) {
  Graph g;
  g.add_edge("compute", "ghost");
  NodeFileSet files;
  files.add(NodeFile("compute"));
  EXPECT_EQ(g.undefined_modules(files), (std::vector<std::string>{"ghost"}));
}

TEST(GraphTest, DotExportContainsShapes) {
  Graph g;
  g.add_edge("compute", "mpi");
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph rocks"), std::string::npos);
  EXPECT_NE(dot.find("\"compute\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("\"compute\" -> \"mpi\""), std::string::npos);
}

TEST(GraphTest, XmlRoundTrip) {
  Graph g;
  g.set_description("d");
  g.add_edge("compute", "mpi", "ia64");
  const Graph r = Graph::parse(g.to_xml());
  ASSERT_EQ(r.edges().size(), 1u);
  EXPECT_EQ(r.edges()[0].from, "compute");
  EXPECT_EQ(r.edges()[0].arch, "ia64");
  EXPECT_EQ(r.description(), "d");
}

TEST(ProfileTest, RenderHasRedHatStructure) {
  KickstartFile ks;
  ks.add_command("install", "");
  ks.add_command("url", "--url http://10.1.1.1/install");
  ks.add_package("dhcp");
  ks.add_package("glibc");
  ks.add_post("dhcp-server", "echo configured");
  const std::string text = ks.render();
  EXPECT_NE(text.find("install\n"), std::string::npos);
  EXPECT_NE(text.find("%packages\ndhcp\nglibc\n"), std::string::npos);
  EXPECT_NE(text.find("%post\n# from node file: dhcp-server\necho configured"),
            std::string::npos);
}

TEST(ProfileTest, ParseRoundTrip) {
  KickstartFile ks;
  ks.add_command("url", "--url http://x/");
  ks.add_command("reboot", "");
  ks.add_package("a");
  ks.add_package("b");
  ks.add_post("m1", "line1\nline2");
  ks.add_post("m2", "other");
  const KickstartFile r = KickstartFile::parse(ks.render());
  EXPECT_EQ(r.command_arguments("url"), "--url http://x/");
  EXPECT_TRUE(r.has_command("reboot"));
  EXPECT_EQ(r.packages(), (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(r.posts().size(), 2u);
  EXPECT_EQ(r.posts()[0].origin, "m1");
  EXPECT_EQ(strings::trim(r.posts()[0].body), "line1\nline2");
}

TEST(ProfileTest, ParseRejectsUnknownSection) {
  EXPECT_THROW(KickstartFile::parse("%pre\nstuff"), ParseError);
}

class GeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    distro_ = rpm::make_redhat_release();
    config_ = make_default_configuration(distro_);
  }

  NodeConfig node_config(const std::string& appliance) {
    NodeConfig nc;
    nc.hostname = "compute-0-0";
    nc.appliance = appliance;
    nc.ip = Ipv4(10, 255, 255, 254);
    nc.frontend_ip = Ipv4(10, 1, 1, 1);
    nc.distribution_url = "http://10.1.1.1/install/rocks-dist";
    return nc;
  }

  rpm::SynthDistro distro_;
  DefaultConfiguration config_;
};

TEST_F(GeneratorTest, ComputeProfileIsComplete) {
  const Generator gen(config_.files, config_.graph, &distro_.repo);
  const KickstartFile ks = gen.generate(node_config("compute"));
  // Header answers every install question.
  EXPECT_TRUE(ks.has_command("install"));
  EXPECT_NE(ks.command_arguments("url").find("http://10.1.1.1"), std::string::npos);
  EXPECT_TRUE(ks.has_command("reboot"));
  // Package set covers base + mpi + development + myrinet.
  const auto& pkgs = ks.packages();
  for (const char* expected : {"glibc", "mpich", "gcc", "gm-driver", "pbs-mom", "rocks-ekv"})
    EXPECT_NE(std::find(pkgs.begin(), pkgs.end(), expected), pkgs.end()) << expected;
  // No duplicates even though modules overlap.
  std::set<std::string> unique(pkgs.begin(), pkgs.end());
  EXPECT_EQ(unique.size(), pkgs.size());
}

TEST_F(GeneratorTest, LocalizationSubstitutesNodeValues) {
  const Generator gen(config_.files, config_.graph, &distro_.repo);
  const KickstartFile ks = gen.generate(node_config("compute"));
  bool found_frontend = false;
  for (const auto& post : ks.posts()) {
    EXPECT_EQ(post.body.find("@FRONTEND@"), std::string::npos) << "unsubstituted marker";
    if (post.body.find("10.1.1.1") != std::string::npos) found_frontend = true;
  }
  EXPECT_TRUE(found_frontend);
}

TEST_F(GeneratorTest, FrontendSupersetOfCompute) {
  const Generator gen(config_.files, config_.graph, &distro_.repo);
  const auto compute = gen.generate(node_config("compute")).packages();
  const auto frontend = gen.generate(node_config("frontend")).packages();
  EXPECT_GT(frontend.size(), compute.size());
  const std::set<std::string> fe(frontend.begin(), frontend.end());
  for (const char* service : {"dhcp", "mysql-server", "apache", "rocks-dist"})
    EXPECT_TRUE(fe.contains(service)) << service;
}

TEST_F(GeneratorTest, OptionalPackagesPrunedAgainstDistro) {
  NodeFileSet files;
  NodeFile mod("m");
  mod.add_package("glibc");
  mod.add_package("not-in-distro", "", /*optional=*/true);
  mod.add_package("required-missing");  // not optional: kept
  files.add(mod);
  Graph g;
  g.add_edge("m", "m");  // self edge so m is a node; traversal is just m
  const Generator gen(files, g, &distro_.repo);
  auto nc = node_config("m");
  const auto pkgs = gen.generate(nc).packages();
  EXPECT_EQ(pkgs, (std::vector<std::string>{"glibc", "required-missing"}));
}

TEST_F(GeneratorTest, UnknownModuleThrows) {
  Graph g;
  g.add_edge("compute", "ghost-module");
  const Generator gen(config_.files, g, &distro_.repo);
  auto nc = node_config("compute");
  EXPECT_THROW(gen.generate(nc), LookupError);
}

TEST_F(GeneratorTest, PartitionSchemePreservesState) {
  const Generator gen(config_.files, config_.graph, &distro_.repo);
  const KickstartFile ks = gen.generate(node_config("compute"));
  bool found_state_partition = false;
  for (const auto& cmd : ks.commands())
    if (cmd.name == "part" && cmd.arguments.find("/state/partition1") != std::string::npos &&
        cmd.arguments.find("--noformat") != std::string::npos)
      found_state_partition = true;
  EXPECT_TRUE(found_state_partition);
}

// --- appliance profile cache ------------------------------------------------

TEST_F(GeneratorTest, ProfileCacheHitsKeepOutputIdentical) {
  const Generator cached(config_.files, config_.graph, &distro_.repo);
  const std::string first = cached.generate_text(node_config("compute"));
  const std::string second = cached.generate_text(node_config("compute"));
  EXPECT_EQ(cached.profile_cache_misses(), 1u);
  EXPECT_EQ(cached.profile_cache_hits(), 1u);
  EXPECT_EQ(first, second);
  // A fresh generator (cold cache) produces the same bytes.
  const Generator cold(config_.files, config_.graph, &distro_.repo);
  EXPECT_EQ(cold.generate_text(node_config("compute")), first);
}

TEST_F(GeneratorTest, ProfileCacheLocalizesPerNodeOnHits) {
  const Generator gen(config_.files, config_.graph, &distro_.repo);
  NodeConfig a = node_config("compute");
  NodeConfig b = node_config("compute");
  b.hostname = "compute-0-7";
  b.ip = Ipv4(10, 255, 255, 247);
  const std::string text_a = gen.generate_text(a);
  const std::string text_b = gen.generate_text(b);
  EXPECT_EQ(gen.profile_cache_hits(), 1u);  // b rode a's cached profile
  EXPECT_NE(text_a, text_b);
  EXPECT_NE(text_b.find("compute-0-7"), std::string::npos);
  EXPECT_EQ(text_b.find("@HOSTNAME@"), std::string::npos);
  // Same skeleton: identical package manifests.
  EXPECT_EQ(gen.generate(a).packages(), gen.generate(b).packages());
}

TEST_F(GeneratorTest, GraphEditInvalidatesProfileCache) {
  const Generator gen(config_.files, config_.graph, &distro_.repo);
  const auto before = gen.generate(node_config("compute")).packages();
  EXPECT_NE(std::find(before.begin(), before.end(), "gm-driver"), before.end());
  ASSERT_EQ(config_.graph.remove_edge("compute", "myrinet"), 1u);
  const auto after = gen.generate(node_config("compute")).packages();
  EXPECT_EQ(std::find(after.begin(), after.end(), "gm-driver"), after.end());
  EXPECT_EQ(gen.profile_cache_misses(), 2u);  // second build, not a stale hit
}

TEST_F(GeneratorTest, NodeFileEditInvalidatesProfileCache) {
  const Generator gen(config_.files, config_.graph, &distro_.repo);
  const auto before = gen.generate(node_config("compute")).packages();
  EXPECT_EQ(std::find(before.begin(), before.end(), "strace"), before.end());
  config_.files.get_mutable("base").add_package("strace");
  const auto after = gen.generate(node_config("compute")).packages();
  EXPECT_NE(std::find(after.begin(), after.end(), "strace"), after.end());
}

TEST_F(GeneratorTest, ExplicitInvalidationAfterDistroChange) {
  NodeFileSet files;
  NodeFile mod("m");
  mod.add_package("glibc");
  mod.add_package("late-arrival", "", /*optional=*/true);
  files.add(mod);
  Graph g;
  g.add_edge("m", "m");
  rpm::Repository repo;
  {
    rpm::Package pkg;
    pkg.name = "glibc";
    pkg.evr = rpm::Evr::parse("2.2.4-13");
    pkg.arch = "i386";
    repo.add(pkg);
  }
  const Generator gen(files, g, &repo);
  auto nc = node_config("m");
  EXPECT_EQ(gen.generate(nc).packages(), (std::vector<std::string>{"glibc"}));
  // The repository has no revision counter, so the generator cannot see this
  // mutation on its own...
  rpm::Package pkg;
  pkg.name = "late-arrival";
  pkg.evr = rpm::Evr::parse("1.0-1");
  pkg.arch = "i386";
  repo.add(pkg);
  EXPECT_EQ(gen.generate(nc).packages(), (std::vector<std::string>{"glibc"}));
  // ...until told. After invalidation the optional package is carried.
  gen.invalidate_profiles();
  EXPECT_EQ(gen.generate(nc).packages(),
            (std::vector<std::string>{"glibc", "late-arrival"}));
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    distro_ = rpm::make_redhat_release();
    config_ = make_default_configuration(distro_);
    ensure_cluster_schema(db_);
    insert_node_row(db_, "00:30:c1:d8:ac:80", "frontend-0", 1, 0, 0, "10.1.1.1");
    insert_node_row(db_, "00:50:8b:e0:3a:a7", "compute-0-0", 2, 0, 0, "10.255.255.254");
    insert_node_row(db_, "00:01:e7:1a:be:00", "network-0-0", 4, 0, 0, "10.255.255.253");
    server_ = std::make_unique<KickstartServer>(db_, config_.files, config_.graph,
                                                Ipv4(10, 1, 1, 1),
                                                "http://10.1.1.1/install/rocks-dist",
                                                &distro_.repo);
  }

  rpm::SynthDistro distro_;
  DefaultConfiguration config_;
  sqldb::Database db_;
  std::unique_ptr<KickstartServer> server_;
};

TEST_F(ServerTest, ResolvesComputeNodeByIp) {
  const NodeConfig nc = server_->resolve(Ipv4(10, 255, 255, 254));
  EXPECT_EQ(nc.hostname, "compute-0-0");
  EXPECT_EQ(nc.appliance, "compute");
  EXPECT_EQ(nc.arch, "i386");
}

TEST_F(ServerTest, ServesDifferentProfilesPerAppliance) {
  const std::string compute = server_->handle_request(Ipv4(10, 255, 255, 254));
  const std::string frontend = server_->handle_request(Ipv4(10, 1, 1, 1));
  EXPECT_NE(compute, frontend);
  EXPECT_NE(compute.find("pbs-mom"), std::string::npos);
  EXPECT_NE(frontend.find("mysql-server"), std::string::npos);
  EXPECT_EQ(server_->requests_served(), 2u);
}

TEST_F(ServerTest, UnknownIpRejected) {
  EXPECT_THROW(server_->handle_request(Ipv4(10, 9, 9, 9)), LookupError);
}

TEST_F(ServerTest, NonKickstartableApplianceRejected) {
  // network-0-0 is an Ethernet switch (membership 4 -> appliance with no
  // graph root).
  EXPECT_THROW(server_->handle_request(Ipv4(10, 255, 255, 253)), LookupError);
}

TEST_F(ServerTest, SchemaSeedsPaperTableIII) {
  const auto rows = db_.execute("SELECT name, compute FROM memberships WHERE id <= 6 ORDER BY id");
  ASSERT_EQ(rows.row_count(), 6u);
  EXPECT_EQ(rows.rows[0][0].as_text(), "Frontend");
  EXPECT_EQ(rows.rows[1][0].as_text(), "Compute");
  EXPECT_EQ(rows.rows[1][1].as_text(), "yes");
  EXPECT_EQ(rows.rows[5][0].as_text(), "Power Units");
}

TEST_F(ServerTest, DefaultGraphLintClean) {
  EXPECT_TRUE(config_.graph.undefined_modules(config_.files).empty());
  EXPECT_FALSE(config_.graph.has_cycle());
}

TEST_F(ServerTest, ServerStaysCorrectAfterGraphEdit) {
  const std::string before = server_->handle_request(Ipv4(10, 255, 255, 254));
  EXPECT_NE(before.find("gm-driver"), std::string::npos);
  ASSERT_EQ(config_.graph.remove_edge("compute", "myrinet"), 1u);
  const std::string after = server_->handle_request(Ipv4(10, 255, 255, 254));
  EXPECT_EQ(after.find("gm-driver"), std::string::npos)
      << "profile cache served a stale appliance skeleton";
  // Repeat requests hit the rebuilt cache entry.
  EXPECT_EQ(server_->handle_request(Ipv4(10, 255, 255, 254)), after);
  EXPECT_GE(server_->generator().profile_cache_hits(), 1u);
}

TEST_F(ServerTest, HandleManyMatchesSerialRequests) {
  const std::vector<Ipv4> ips = {Ipv4(10, 255, 255, 254), Ipv4(10, 1, 1, 1),
                                 Ipv4(10, 255, 255, 254)};
  std::vector<std::string> expected;
  for (const Ipv4 ip : ips) expected.push_back(server_->handle_request(ip));

  support::ThreadPool pool(4);
  const auto report = server_->handle_many(pool, ips);
  EXPECT_EQ(report.served, ips.size());
  EXPECT_EQ(report.failed, 0u);
  for (std::size_t i = 0; i < ips.size(); ++i) {
    EXPECT_EQ(report.results[i], expected[i]) << "request " << i;
    EXPECT_TRUE(report.errors[i].empty());
  }
  EXPECT_EQ(server_->requests_served(), 2 * ips.size());
  // ceil(3 requests / 4 workers) = 1 serving round.
  EXPECT_DOUBLE_EQ(report.simulated_seconds, KickstartServer::kSimulatedRequestSeconds);
}

TEST_F(ServerTest, HandleManyIsolatesPerRequestFailures) {
  support::ThreadPool pool(2);
  const auto report =
      server_->handle_many(pool, {Ipv4(10, 255, 255, 254), Ipv4(10, 9, 9, 9)});
  EXPECT_EQ(report.served, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_TRUE(report.errors[0].empty());
  EXPECT_NE(report.errors[1].find("unknown address"), std::string::npos);
  EXPECT_TRUE(report.results[1].empty());
}

TEST_F(ServerTest, GraphRemoveEdge) {
  Graph& g = config_.graph;
  const std::size_t before = g.edges().size();
  EXPECT_EQ(g.remove_edge("compute", "myrinet"), 1u);
  EXPECT_EQ(g.edges().size(), before - 1);
  EXPECT_EQ(g.remove_edge("compute", "myrinet"), 0u);
  const auto walk = g.traverse("compute");
  EXPECT_EQ(std::find(walk.begin(), walk.end(), "myrinet"), walk.end());
}

class FrontendFormTest : public ::testing::Test {
 protected:
  void SetUp() override {
    distro_ = rpm::make_redhat_release();
    config_ = make_default_configuration(distro_);
  }
  rpm::SynthDistro distro_;
  DefaultConfiguration config_;
};

TEST_F(FrontendFormTest, BuildsDualHomedFrontendProfile) {
  FormAnswers answers;
  answers.cluster_name = "Meteor";
  answers.frontend_hostname = "meteor";
  const KickstartFile ks =
      build_frontend_kickstart(answers, config_.files, config_.graph, &distro_.repo);

  // Two static network commands: eth0 private, eth1 public.
  int networks = 0;
  bool eth0_private = false, eth1_public = false;
  for (const auto& cmd : ks.commands()) {
    if (cmd.name != "network") continue;
    ++networks;
    if (cmd.arguments.find("eth0") != std::string::npos &&
        cmd.arguments.find("10.1.1.1") != std::string::npos)
      eth0_private = true;
    if (cmd.arguments.find("eth1") != std::string::npos &&
        cmd.arguments.find("198.202.75.1") != std::string::npos)
      eth1_public = true;
  }
  EXPECT_EQ(networks, 2);
  EXPECT_TRUE(eth0_private);
  EXPECT_TRUE(eth1_public);

  // Frontend package set and the form's own post section.
  const std::set<std::string> pkgs(ks.packages().begin(), ks.packages().end());
  EXPECT_TRUE(pkgs.contains("mysql-server"));
  EXPECT_TRUE(pkgs.contains("dhcp"));
  ASSERT_FALSE(ks.posts().empty());
  EXPECT_EQ(ks.posts()[0].origin, "frontend-form");
  EXPECT_NE(ks.posts()[0].body.find("Meteor"), std::string::npos);
}

TEST_F(FrontendFormTest, ValidationRejectsBrokenForms) {
  FormAnswers bad;
  bad.frontend_hostname = "  ";
  EXPECT_THROW(build_frontend_kickstart(bad, config_.files, config_.graph), ParseError);
  FormAnswers same_ip;
  same_ip.public_ip = same_ip.private_ip;
  EXPECT_THROW(build_frontend_kickstart(same_ip, config_.files, config_.graph), ParseError);
  FormAnswers no_pw;
  no_pw.root_password_crypted = "";
  EXPECT_THROW(build_frontend_kickstart(no_pw, config_.files, config_.graph), ParseError);
  FormAnswers ok;
  EXPECT_NO_THROW(ok.validate());
}

}  // namespace
}  // namespace rocks::kickstart
