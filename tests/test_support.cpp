// Unit tests for the support library: strings, IP/MAC types, RNG, tables,
// thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "support/backoff.hpp"
#include "support/error.hpp"
#include "support/ip.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/threadpool.hpp"

namespace rocks {
namespace {

using strings::split;
using strings::split_ws;
using strings::trim;

TEST(Strings, SplitBasic) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  a  b\tc\n"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(strings::join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(strings::join({}, ","), "");
  EXPECT_EQ(strings::join({"x"}, ","), "x");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(strings::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(strings::replace_all("no match", "x", "y"), "no match");
  EXPECT_EQ(strings::replace_all("abc", "", "y"), "abc");
}

TEST(Strings, Cat) {
  EXPECT_EQ(strings::cat("n=", 42, ", f=", 1.5), "n=42, f=1.5");
  EXPECT_EQ(strings::cat(), "");
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool match;
};

class GlobTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobTest, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(strings::glob_match(c.pattern, c.text), c.match)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(Patterns, GlobTest,
                         ::testing::Values(GlobCase{"*", "", true},
                                           GlobCase{"*", "anything", true},
                                           GlobCase{"compute-*", "compute-0-0", true},
                                           GlobCase{"compute-*", "frontend-0", false},
                                           GlobCase{"compute-?-?", "compute-0-1", true},
                                           GlobCase{"compute-?-?", "compute-0-12", false},
                                           GlobCase{"*-0", "rack-1-0", true},
                                           GlobCase{"a*b*c", "axxbyyc", true},
                                           GlobCase{"a*b*c", "axxbyy", false},
                                           GlobCase{"", "", true},
                                           GlobCase{"", "x", false}));

TEST(Ipv4, ParseAndFormat) {
  const auto ip = Ipv4::parse("10.255.255.254");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "10.255.255.254");
  EXPECT_EQ(ip->value(), 0x0AFFFFFEu);
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::parse("10.1.1").has_value());
  EXPECT_FALSE(Ipv4::parse("10.1.1.256").has_value());
  EXPECT_FALSE(Ipv4::parse("10.1.1.x").has_value());
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
}

TEST(Ipv4, PrevAllocatesDownward) {
  const Ipv4 top(10, 255, 255, 254);
  EXPECT_EQ(top.prev().to_string(), "10.255.255.253");
}

TEST(Ipv4, SubnetMembership) {
  const Ipv4 ip(10, 1, 1, 1);
  EXPECT_TRUE(ip.in_subnet(Ipv4(10, 0, 0, 0), 8));
  EXPECT_FALSE(ip.in_subnet(Ipv4(192, 168, 0, 0), 16));
  EXPECT_TRUE(ip.in_subnet(Ipv4(0, 0, 0, 0), 0));
  EXPECT_TRUE(ip.in_subnet(ip, 32));
  EXPECT_FALSE(ip.next().in_subnet(ip, 32));
}

TEST(Mac, ParseAndFormat) {
  const auto mac = Mac::parse("00:50:8b:e0:3a:a7");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "00:50:8b:e0:3a:a7");
}

TEST(Mac, ParseRejectsMalformed) {
  EXPECT_FALSE(Mac::parse("00:50:8b:e0:3a").has_value());
  EXPECT_FALSE(Mac::parse("00:50:8b:e0:3a:zz").has_value());
  EXPECT_FALSE(Mac::parse("").has_value());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable table({"Nodes", "Minutes"});
  table.add_row({"1", "10.3"});
  table.add_row({"32", "13.7"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| Nodes | Minutes |"), std::string::npos);
  EXPECT_NE(out.find("| 32    | 13.7    |"), std::string::npos);
}

TEST(AsciiTable, RejectsRaggedRow) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), StateError);
}

TEST(Errors, RequireHelpers) {
  EXPECT_NO_THROW(require_found(true, "x"));
  EXPECT_THROW(require_found(false, "x"), LookupError);
  EXPECT_THROW(require_state(false, "x"), StateError);
}

TEST(Fixed, FormatsDecimals) {
  EXPECT_EQ(fixed(10.345, 1), "10.3");
  EXPECT_EQ(fixed(2.0, 2), "2.00");
}

TEST(ThreadPool, SubmitReturnsFutureWithResult) {
  support::ThreadPool pool(2);
  auto answer = pool.submit([] { return 42; });
  EXPECT_EQ(answer.get(), 42);
  EXPECT_EQ(pool.tasks_run(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  constexpr std::size_t kItems = 1000;
  std::vector<std::atomic<int>> touched(kItems);
  pool.parallel_for(kItems, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroItemsIsANoOp) {
  support::ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "fn must not run for n == 0"; });
  EXPECT_EQ(pool.tasks_run(), 0u);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletes) {
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
  // 0 workers clamps to 1 rather than deadlocking.
  support::ThreadPool clamped(0);
  EXPECT_EQ(clamped.size(), 1u);
  EXPECT_EQ(clamped.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForPropagatesWorkerException) {
  support::ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 13) throw StateError("worker 13 failed");
                        }),
      StateError);
  // Other chunks are not cancelled; the pool stays usable afterwards.
  EXPECT_GT(ran.load(), 0);
  std::atomic<int> after{0};
  pool.parallel_for(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  {
    support::ThreadPool pool(1);  // one worker so tasks genuinely queue up
    for (int i = 0; i < 32; ++i)
      futures.push_back(pool.submit([&completed] { completed.fetch_add(1); }));
    // Destructor drains: every queued task must run before the worker exits.
  }
  EXPECT_EQ(completed.load(), 32);
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
}

TEST(ThreadPool, StatsTrackQueueAndRuntime) {
  support::ThreadPool pool(2);
  pool.parallel_for(100, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  });
  EXPECT_GT(pool.tasks_run(), 0u);
  EXPECT_GT(pool.queue_depth_high_water(), 0u);
  EXPECT_GT(pool.total_run().count(), 0);
  EXPECT_GE(pool.total_wait().count(), 0);
}

TEST(ThreadPool, ParallelWallSecondsCeilModel) {
  using support::parallel_wall_seconds;
  EXPECT_DOUBLE_EQ(parallel_wall_seconds(8, 1, 2.0), 16.0);
  EXPECT_DOUBLE_EQ(parallel_wall_seconds(8, 8, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(parallel_wall_seconds(9, 8, 2.0), 4.0);  // ceil(9/8) = 2
  EXPECT_DOUBLE_EQ(parallel_wall_seconds(0, 4, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(parallel_wall_seconds(5, 0, 2.0), 10.0);  // 0 workers = 1
}

TEST(BackoffPolicy, FirstAttemptIsExactlyBaseWithNoRngDraw) {
  const support::BackoffPolicy policy{5.0, 60.0, 0.25};
  Rng rng(1);
  Rng untouched(1);
  EXPECT_DOUBLE_EQ(policy.delay(0, rng), 5.0);
  EXPECT_DOUBLE_EQ(policy.delay(1, rng), 5.0);
  // The fault-free path never consults the RNG (DESIGN.md §12.6 property 1).
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(BackoffPolicy, DoublesUpToCapWithBoundedJitter) {
  const support::BackoffPolicy policy{5.0, 60.0, 0.25};
  Rng rng(42);
  for (int attempt = 2; attempt <= 8; ++attempt) {
    const double raw = std::min(5.0 * (1 << (attempt - 1)), 60.0);
    const double delay = policy.delay(attempt, rng);
    EXPECT_GE(delay, raw) << attempt;
    EXPECT_LT(delay, raw * 1.25) << attempt;
  }
  // Far past the ceiling the delay stays bounded by cap * (1 + jitter).
  EXPECT_LT(policy.delay(50, rng), 60.0 * 1.25);
}

TEST(BackoffPolicy, ZeroJitterIsFullyDeterministic) {
  const support::BackoffPolicy policy{2.0, 16.0, 0.0};
  Rng rng(7);
  EXPECT_DOUBLE_EQ(policy.delay(2, rng), 4.0);
  EXPECT_DOUBLE_EQ(policy.delay(3, rng), 8.0);
  EXPECT_DOUBLE_EQ(policy.delay(4, rng), 16.0);
  EXPECT_DOUBLE_EQ(policy.delay(5, rng), 16.0);  // capped
}

}  // namespace
}  // namespace rocks
