// Unit tests for the support library: strings, IP/MAC types, RNG, tables.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/ip.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace rocks {
namespace {

using strings::split;
using strings::split_ws;
using strings::trim;

TEST(Strings, SplitBasic) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  a  b\tc\n"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(strings::join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(strings::join({}, ","), "");
  EXPECT_EQ(strings::join({"x"}, ","), "x");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(strings::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(strings::replace_all("no match", "x", "y"), "no match");
  EXPECT_EQ(strings::replace_all("abc", "", "y"), "abc");
}

TEST(Strings, Cat) {
  EXPECT_EQ(strings::cat("n=", 42, ", f=", 1.5), "n=42, f=1.5");
  EXPECT_EQ(strings::cat(), "");
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool match;
};

class GlobTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobTest, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(strings::glob_match(c.pattern, c.text), c.match)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(Patterns, GlobTest,
                         ::testing::Values(GlobCase{"*", "", true},
                                           GlobCase{"*", "anything", true},
                                           GlobCase{"compute-*", "compute-0-0", true},
                                           GlobCase{"compute-*", "frontend-0", false},
                                           GlobCase{"compute-?-?", "compute-0-1", true},
                                           GlobCase{"compute-?-?", "compute-0-12", false},
                                           GlobCase{"*-0", "rack-1-0", true},
                                           GlobCase{"a*b*c", "axxbyyc", true},
                                           GlobCase{"a*b*c", "axxbyy", false},
                                           GlobCase{"", "", true},
                                           GlobCase{"", "x", false}));

TEST(Ipv4, ParseAndFormat) {
  const auto ip = Ipv4::parse("10.255.255.254");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "10.255.255.254");
  EXPECT_EQ(ip->value(), 0x0AFFFFFEu);
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::parse("10.1.1").has_value());
  EXPECT_FALSE(Ipv4::parse("10.1.1.256").has_value());
  EXPECT_FALSE(Ipv4::parse("10.1.1.x").has_value());
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
}

TEST(Ipv4, PrevAllocatesDownward) {
  const Ipv4 top(10, 255, 255, 254);
  EXPECT_EQ(top.prev().to_string(), "10.255.255.253");
}

TEST(Ipv4, SubnetMembership) {
  const Ipv4 ip(10, 1, 1, 1);
  EXPECT_TRUE(ip.in_subnet(Ipv4(10, 0, 0, 0), 8));
  EXPECT_FALSE(ip.in_subnet(Ipv4(192, 168, 0, 0), 16));
  EXPECT_TRUE(ip.in_subnet(Ipv4(0, 0, 0, 0), 0));
  EXPECT_TRUE(ip.in_subnet(ip, 32));
  EXPECT_FALSE(ip.next().in_subnet(ip, 32));
}

TEST(Mac, ParseAndFormat) {
  const auto mac = Mac::parse("00:50:8b:e0:3a:a7");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "00:50:8b:e0:3a:a7");
}

TEST(Mac, ParseRejectsMalformed) {
  EXPECT_FALSE(Mac::parse("00:50:8b:e0:3a").has_value());
  EXPECT_FALSE(Mac::parse("00:50:8b:e0:3a:zz").has_value());
  EXPECT_FALSE(Mac::parse("").has_value());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable table({"Nodes", "Minutes"});
  table.add_row({"1", "10.3"});
  table.add_row({"32", "13.7"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| Nodes | Minutes |"), std::string::npos);
  EXPECT_NE(out.find("| 32    | 13.7    |"), std::string::npos);
}

TEST(AsciiTable, RejectsRaggedRow) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), StateError);
}

TEST(Errors, RequireHelpers) {
  EXPECT_NO_THROW(require_found(true, "x"));
  EXPECT_THROW(require_found(false, "x"), LookupError);
  EXPECT_THROW(require_state(false, "x"), StateError);
}

TEST(Fixed, FormatsDecimals) {
  EXPECT_EQ(fixed(10.345, 1), "10.3");
  EXPECT_EQ(fixed(2.0, 2), "2.00");
}

}  // namespace
}  // namespace rocks
