// Unit tests for rocks-dist: mirroring, version resolution, the symlink
// tree, the build directory, and hierarchical (object-oriented)
// distributions (paper Section 6.2, Figures 5-6).
#include <gtest/gtest.h>

#include "kickstart/defaults.hpp"
#include "rocksdist/rocksdist.hpp"
#include "rpm/solver.hpp"
#include "rpm/synth.hpp"
#include "support/strings.hpp"

namespace rocks::rocksdist {
namespace {

class RocksDistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    distro_ = rpm::make_redhat_release();
    config_ = kickstart::make_default_configuration(distro_);
  }

  rpm::SynthDistro distro_;
  kickstart::DefaultConfiguration config_;
  vfs::FileSystem fs_;
};

TEST_F(RocksDistTest, MirrorMaterializesPackages) {
  RocksDist rd(fs_);
  const MirrorReport report = rd.mirror(distro_.repo, "redhat/7.2");
  EXPECT_EQ(report.packages_fetched, distro_.repo.package_count());
  EXPECT_EQ(report.bytes_fetched, distro_.repo.total_bytes());
  EXPECT_TRUE(fs_.is_directory("/home/install/mirror/redhat/7.2/RPMS"));
  // Mirroring again is a no-op (incremental).
  const MirrorReport again = rd.mirror(distro_.repo, "redhat/7.2");
  EXPECT_EQ(again.packages_fetched, 0u);
  EXPECT_EQ(again.bytes_fetched, 0u);
}

TEST_F(RocksDistTest, DistResolvesNewestVersions) {
  RocksDist rd(fs_);
  rd.mirror(distro_.repo, "redhat/7.2");
  // An update stream adds newer versions of existing packages.
  const auto stream = rpm::make_update_stream(distro_);
  rpm::Repository updates("updates");
  for (const auto& u : stream) updates.add(u.package);
  rd.mirror(updates, "updates/7.2");

  const DistReport report = rd.dist(config_.files, config_.graph);
  EXPECT_GT(report.dropped_stale, 0u);  // superseded versions excluded
  // Every updated package resolves to its newest EVR.
  for (const auto& u : stream) {
    const rpm::Package* resolved = rd.distribution().newest(u.package.name, u.package.arch);
    ASSERT_NE(resolved, nullptr);
    const rpm::Package* base = distro_.repo.newest(u.package.name, u.package.arch);
    EXPECT_FALSE(resolved->evr < base->evr);
  }
}

TEST_F(RocksDistTest, DistTreeIsMostlySymlinks) {
  RocksDist rd(fs_);
  rd.mirror(distro_.repo, "redhat/7.2");
  const DistReport report = rd.dist(config_.files, config_.graph);
  EXPECT_EQ(report.symlink_count, report.package_count);
  const std::string dist = rd.dist_path();
  EXPECT_EQ(fs_.count(dist, vfs::NodeType::kSymlink), report.symlink_count);
  // A symlink resolves to real mirrored bytes.
  const rpm::Package* glibc = rd.distribution().newest("glibc");
  ASSERT_NE(glibc, nullptr);
  const std::string link = strings::cat(dist, "/RedHat/RPMS/", glibc->filename());
  EXPECT_TRUE(fs_.is_symlink(link));
  EXPECT_TRUE(fs_.is_file(link));  // follows into the mirror
}

TEST_F(RocksDistTest, TreeSizeAndBuildTimeMatchPaper) {
  RocksDist rd(fs_);
  rd.mirror(distro_.repo, "redhat/7.2");
  const DistReport report = rd.dist(config_.files, config_.graph);
  const double mb = static_cast<double>(report.tree_bytes) / (1024.0 * 1024.0);
  // "each distribution is lightweight (on the order of 25MB)"
  EXPECT_GT(mb, 10.0);
  EXPECT_LT(mb, 50.0);
  // "and can be built in under a minute"
  EXPECT_LT(report.build_seconds, 60.0);
  EXPECT_GT(report.build_seconds, 1.0);
}

TEST_F(RocksDistTest, BuildDirectoryCarriesXmlInfrastructure) {
  RocksDist rd(fs_);
  rd.mirror(distro_.repo, "redhat/7.2");
  rd.dist(config_.files, config_.graph);
  const std::string build = strings::cat(rd.dist_path(), "/build");
  EXPECT_TRUE(fs_.is_file(build + "/graphs/default.xml"));
  EXPECT_TRUE(fs_.is_file(build + "/nodes/compute.xml"));
  EXPECT_TRUE(fs_.is_file(build + "/nodes/dhcp-server.xml"));
  // The serialized node file parses back.
  const auto reparsed = kickstart::NodeFile::parse(
      "dhcp-server", fs_.read_file(build + "/nodes/dhcp-server.xml"));
  EXPECT_EQ(reparsed.packages()[0].name, "dhcp");
}

TEST_F(RocksDistTest, LocalPackagesOverrideMirrored) {
  RocksDist rd(fs_);
  rd.mirror(distro_.repo, "redhat/7.2");
  // Site rebuilds the kernel (the Section 3.3 workflow: make rpm, copy back,
  // rocks-dist).
  const rpm::Package* kernel = distro_.repo.newest("kernel");
  rpm::Package custom = *kernel;
  custom.evr.release = custom.evr.release + ".site1";
  custom.origin = rpm::Origin::kLocal;
  rd.add_local(custom);
  rd.dist(config_.files, config_.graph);
  EXPECT_EQ(rd.distribution().newest("kernel")->evr.to_string(), custom.evr.to_string());
}

TEST_F(RocksDistTest, HierarchicalDistributionInheritsAndExtends) {
  // Figure 6: campus mirrors us, department mirrors campus.
  RocksDist sdsc(fs_);
  sdsc.mirror(distro_.repo, "redhat/7.2");
  sdsc.dist(config_.files, config_.graph);

  vfs::FileSystem campus_fs;
  RocksDist campus(campus_fs, DistConfig{"/home/install", "7.2-campus", "i386", 32 * 1024});
  campus.mirror(sdsc.as_upstream("sdsc-rocks"), "rocks/7.2");
  rpm::Package site_pkg;
  site_pkg.name = "campus-licenses";
  site_pkg.evr = rpm::Evr::parse("1.0-1");
  site_pkg.size_bytes = 1024 * 1024;
  site_pkg.origin = rpm::Origin::kLocal;
  site_pkg.files = {"/usr/bin/campus-licenses"};
  campus.add_local(site_pkg);
  const DistReport report = campus.dist(config_.files, config_.graph);

  // Child = parent + local additions.
  EXPECT_EQ(report.package_count, sdsc.distribution().package_count() + 1);
  EXPECT_TRUE(campus.distribution().contains("campus-licenses"));
  EXPECT_TRUE(campus.distribution().contains("glibc"));
}

TEST_F(RocksDistTest, RepeatedDistIsIdempotent) {
  RocksDist rd(fs_);
  rd.mirror(distro_.repo, "redhat/7.2");
  const DistReport first = rd.dist(config_.files, config_.graph);
  const DistReport second = rd.dist(config_.files, config_.graph);
  EXPECT_EQ(first.package_count, second.package_count);
  EXPECT_EQ(first.tree_bytes, second.tree_bytes);
}

// Regression: re-mirroring with a warm gathered set must be a complete
// no-op — including for equal-EVR copies arriving through a *different*
// section, which the pre-EVR-aware check rewrote (and double-counted) on
// every nightly mirror pass.
TEST_F(RocksDistTest, RepeatedMirrorIsIdempotentAcrossSections) {
  RocksDist rd(fs_);
  const MirrorReport first = rd.mirror(distro_.repo, "redhat/7.2");
  EXPECT_EQ(first.packages_fetched, distro_.repo.package_count());
  const std::size_t gathered = rd.gathered().package_count();

  // Same section again: incremental skip.
  const MirrorReport same = rd.mirror(distro_.repo, "redhat/7.2");
  EXPECT_EQ(same.packages_fetched, 0u);
  EXPECT_EQ(same.packages_refreshed, 0u);
  EXPECT_EQ(same.bytes_fetched, 0u);
  EXPECT_DOUBLE_EQ(same.mirror_seconds, 0.0);

  // Equal-EVR copies through another section: nothing to refresh, no file
  // rewrites, no duplicate gathered entries.
  const MirrorReport sibling = rd.mirror(distro_.repo, "updates/7.2");
  EXPECT_EQ(sibling.packages_fetched, 0u);
  EXPECT_EQ(sibling.packages_refreshed, 0u);
  EXPECT_EQ(sibling.bytes_fetched, 0u);
  EXPECT_EQ(rd.gathered().package_count(), gathered);
  EXPECT_FALSE(fs_.exists("/home/install/mirror/updates/7.2/RPMS"))
      << "no package was fetched, so mkdir_p is the only write allowed";

  // A genuinely newer EVR still comes through, counted as a refresh.
  const rpm::Package* glibc = distro_.repo.newest("glibc");
  rpm::Package newer = *glibc;
  newer.evr.release = newer.evr.release + ".1";
  rpm::Repository errata("errata");
  errata.add(newer);
  const MirrorReport update = rd.mirror(errata, "updates/7.2");
  EXPECT_EQ(update.packages_fetched, 1u);
  EXPECT_EQ(update.packages_refreshed, 1u);
  EXPECT_EQ(rd.gathered().package_count(), gathered + 1);
}

TEST_F(RocksDistTest, PooledBuildChargesParallelWallClock) {
  support::ThreadPool pool(8);
  RocksDist serial(fs_);
  serial.mirror(distro_.repo, "redhat/7.2");
  const DistReport serial_report = serial.dist(config_.files, config_.graph);

  vfs::FileSystem pooled_fs;
  RocksDist pooled(pooled_fs);
  pooled.set_pool(&pool);
  const MirrorReport mirror = pooled.mirror(distro_.repo, "redhat/7.2");
  EXPECT_EQ(mirror.workers, 8u);
  EXPECT_GT(mirror.mirror_seconds, 0.0);
  const DistReport pooled_report = pooled.dist(config_.files, config_.graph);

  // The tree is byte-identical; only the simulated wall clock shrinks.
  EXPECT_EQ(pooled_report.package_count, serial_report.package_count);
  EXPECT_EQ(pooled_report.symlink_count, serial_report.symlink_count);
  EXPECT_EQ(pooled_report.tree_bytes, serial_report.tree_bytes);
  EXPECT_LT(pooled_report.build_seconds, serial_report.build_seconds);
  // ceil-model floor: with 8 lanes the per-item work shrinks ~8×, but the
  // fixed setup cost stays.
  EXPECT_GT(pooled_report.build_seconds, 3.0);
}

}  // namespace
}  // namespace rocks::rocksdist
