// Unit tests for the RPM substrate: rpmvercmp ordering, EVR parsing,
// repositories, the dependency solver, the installed-package database, and
// the synthetic Red Hat release generator.
#include <gtest/gtest.h>

#include "rpm/package.hpp"
#include "rpm/repository.hpp"
#include "rpm/rpmdb.hpp"
#include "rpm/solver.hpp"
#include "rpm/synth.hpp"
#include "rpm/version.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::rpm {
namespace {

struct VerCase {
  const char* a;
  const char* b;
  int expected;
};

class RpmVerCmp : public ::testing::TestWithParam<VerCase> {};

TEST_P(RpmVerCmp, MatchesRedHatSemantics) {
  const auto& c = GetParam();
  EXPECT_EQ(rpmvercmp(c.a, c.b), c.expected) << c.a << " vs " << c.b;
  EXPECT_EQ(rpmvercmp(c.b, c.a), -c.expected) << "antisymmetry";
}

// Cases lifted from rpm's own test vectors.
INSTANTIATE_TEST_SUITE_P(
    Vectors, RpmVerCmp,
    ::testing::Values(VerCase{"1.0", "1.0", 0}, VerCase{"1.0", "2.0", -1},
                      VerCase{"2.0.1", "2.0", 1}, VerCase{"2.0", "2.0.1", -1},
                      VerCase{"5.5p1", "5.5p2", -1}, VerCase{"5.5p10", "5.5p1", 1},
                      VerCase{"10xyz", "10.1xyz", -1}, VerCase{"xyz10", "xyz10.1", -1},
                      VerCase{"xyz.4", "8", -1},   // numeric beats alpha
                      VerCase{"1.0010", "1.9", 1},  // longer stripped number wins
                      VerCase{"1.05", "1.5", 0},    // leading zeros stripped
                      VerCase{"2.4", "2.4.1", -1},
                      VerCase{"fc4", "fc.4", 0},    // separators ignored
                      VerCase{"1b.fc17", "1.fc17", -1},
                      VerCase{"1.fc17", "1g.fc17", -1},
                      VerCase{"1.0~rc1", "1.0", -1},  // tilde sorts first
                      VerCase{"1.0~rc1", "1.0~rc2", -1},
                      VerCase{"1.0~rc1~git123", "1.0~rc1", -1},
                      VerCase{"a", "a", 0}, VerCase{"a+", "a+", 0},
                      VerCase{"20101121", "20101122", -1}));

// Property test: rpmvercmp must be a consistent ordering — reflexive,
// antisymmetric, and transitive — over arbitrary version strings, or
// rocks-dist's "keep the newest" resolution would be seed-dependent.
class RpmVerCmpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpmVerCmpProperty, TotalOrderProperties) {
  rocks::Rng rng(GetParam());
  const auto random_version = [&rng] {
    static constexpr char kAlphabet[] = "0123456789abcXY.~-_";
    std::string out;
    const int len = 1 + static_cast<int>(rng.next_below(10));
    for (int i = 0; i < len; ++i)
      out += kAlphabet[rng.next_below(sizeof kAlphabet - 1)];
    return out;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = random_version();
    const std::string b = random_version();
    const std::string c = random_version();
    EXPECT_EQ(rpmvercmp(a, a), 0) << a;
    EXPECT_EQ(rpmvercmp(a, b), -rpmvercmp(b, a)) << a << " / " << b;
    // Transitivity: a<=b and b<=c implies a<=c.
    if (rpmvercmp(a, b) <= 0 && rpmvercmp(b, c) <= 0) {
      EXPECT_LE(rpmvercmp(a, c), 0) << a << " / " << b << " / " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpmVerCmpProperty, ::testing::Values(1, 2, 3, 4, 5));

TEST(Evr, ParseForms) {
  const Evr full = Evr::parse("1:2.4.9-31");
  EXPECT_EQ(full.epoch, 1);
  EXPECT_EQ(full.version, "2.4.9");
  EXPECT_EQ(full.release, "31");
  const Evr vr = Evr::parse("2.4.9-31");
  EXPECT_EQ(vr.epoch, 0);
  EXPECT_EQ(vr.release, "31");
  const Evr v = Evr::parse("2.4.9");
  EXPECT_TRUE(v.release.empty());
  EXPECT_THROW(Evr::parse(":-"), ParseError);
  EXPECT_THROW(Evr::parse("x:1.0"), ParseError);
}

TEST(Evr, EpochDominates) {
  EXPECT_LT(Evr::parse("9.9-9"), Evr::parse("1:0.1-1"));
  EXPECT_EQ(Evr::parse("1.0-1").compare(Evr::parse("1.0-1")), 0);
  EXPECT_LT(Evr::parse("1.0-1"), Evr::parse("1.0-2"));
}

TEST(Evr, RoundTripToString) {
  EXPECT_EQ(Evr::parse("1:2.0-3").to_string(), "1:2.0-3");
  EXPECT_EQ(Evr::parse("2.0-3").to_string(), "2.0-3");
  EXPECT_EQ(Evr::parse("2.0").to_string(), "2.0");
}

TEST(PackageModel, LabelsAndUpgrade) {
  Package a;
  a.name = "dhcp";
  a.evr = Evr::parse("2.0-5");
  a.arch = "i386";
  EXPECT_EQ(a.nvr(), "dhcp-2.0-5");
  EXPECT_EQ(a.nevra(), "dhcp-2.0-5.i386");
  EXPECT_EQ(a.filename(), "dhcp-2.0-5.i386.rpm");
  Package b = a;
  b.evr = Evr::parse("2.0-6");
  EXPECT_TRUE(b.upgrades(a));
  EXPECT_FALSE(a.upgrades(b));
  b.arch = "ia64";
  EXPECT_FALSE(b.upgrades(a));  // different arch
}

TEST(PackageModel, ParseNvrWithDashedNames) {
  const NvrParts parts = parse_nvr("kernel-headers-2.4.9-31");
  EXPECT_EQ(parts.name, "kernel-headers");
  EXPECT_EQ(parts.evr.version, "2.4.9");
  EXPECT_EQ(parts.evr.release, "31");
  EXPECT_THROW(parse_nvr("nodashes"), ParseError);
}

Package mk(const std::string& name, const std::string& evr,
           std::vector<std::string> reqs = {}, const std::string& arch = "i386") {
  Package pkg;
  pkg.name = name;
  pkg.evr = Evr::parse(evr);
  pkg.arch = arch;
  pkg.size_bytes = 1000;
  pkg.requires_names = std::move(reqs);
  pkg.files = {"/usr/bin/" + name};
  return pkg;
}

TEST(RepositoryTest, NewestAcrossVersions) {
  Repository repo("r");
  repo.add(mk("glibc", "2.2.4-13"));
  repo.add(mk("glibc", "2.2.4-19.3"));
  repo.add(mk("glibc", "2.2.4-19"));
  ASSERT_NE(repo.newest("glibc"), nullptr);
  EXPECT_EQ(repo.newest("glibc")->evr.to_string(), "2.2.4-19.3");
  EXPECT_EQ(repo.versions("glibc").size(), 3u);
  EXPECT_EQ(repo.versions("glibc").front()->evr.to_string(), "2.2.4-13");
  EXPECT_EQ(repo.newest("nothere"), nullptr);
}

TEST(RepositoryTest, ArchFiltering) {
  Repository repo("r");
  repo.add(mk("kernel", "2.4.9-31", {}, "i386"));
  repo.add(mk("kernel", "2.4.9-31", {}, "ia64"));
  repo.add(mk("crontabs", "1.10-1", {}, "noarch"));
  EXPECT_EQ(repo.newest("kernel", "ia64")->arch, "ia64");
  EXPECT_EQ(repo.newest("crontabs", "ia64")->arch, "noarch");  // noarch matches all
  EXPECT_EQ(repo.newest("kernel", "alpha"), nullptr);
}

TEST(RepositoryTest, ProviderThroughProvides) {
  Repository repo("r");
  Package mta = mk("sendmail", "8.11-1");
  mta.provides.push_back("smtpdaemon");
  repo.add(std::move(mta));
  ASSERT_NE(repo.provider("smtpdaemon"), nullptr);
  EXPECT_EQ(repo.provider("smtpdaemon")->name, "sendmail");
  EXPECT_EQ(repo.provider("nosuch"), nullptr);
}

TEST(RepositoryTest, ResolveNewestOnePerNameArch) {
  Repository repo("r");
  repo.add(mk("a", "1-1"));
  repo.add(mk("a", "1-2"));
  repo.add(mk("a", "1-2", {}, "ia64"));
  repo.add(mk("b", "5-1"));
  const auto resolved = repo.resolve_newest();
  ASSERT_EQ(resolved.size(), 3u);  // a.i386, a.ia64, b.i386
  EXPECT_EQ(resolved[0]->evr.to_string(), "1-2");
}

TEST(SolverTest, TransitiveClosureInDependencyOrder) {
  Repository repo("r");
  repo.add(mk("glibc", "2.2-1"));
  repo.add(mk("bash", "2.05-8", {"glibc"}));
  repo.add(mk("openssl", "0.9.6-3", {"glibc"}));
  repo.add(mk("openssh", "2.9-1", {"openssl", "glibc"}));
  const Resolution r = resolve(repo, {"openssh", "bash"});
  ASSERT_TRUE(r.complete());
  ASSERT_EQ(r.install_order.size(), 4u);
  auto pos = [&](const std::string& name) {
    for (std::size_t i = 0; i < r.install_order.size(); ++i)
      if (r.install_order[i]->name == name) return i;
    return std::size_t(999);
  };
  EXPECT_LT(pos("glibc"), pos("bash"));
  EXPECT_LT(pos("glibc"), pos("openssl"));
  EXPECT_LT(pos("openssl"), pos("openssh"));
  EXPECT_EQ(r.total_bytes(), 4000u);
}

TEST(SolverTest, ReportsMissingRequirements) {
  Repository repo("r");
  repo.add(mk("mpich", "1.2-1", {"gcc"}));
  const Resolution r = resolve(repo, {"mpich", "ghost"});
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.missing, (std::vector<std::string>{"gcc", "ghost"}));
  EXPECT_EQ(r.install_order.size(), 1u);  // mpich still scheduled
}

TEST(SolverTest, BreaksCyclesDeterministically) {
  Repository repo("r");
  repo.add(mk("glibc", "2.2-1", {"bash"}));
  repo.add(mk("bash", "2.05-8", {"glibc"}));
  const Resolution r = resolve(repo, {"bash"});
  ASSERT_TRUE(r.complete());
  ASSERT_EQ(r.install_order.size(), 2u);
  // Both orders are valid for a cycle; determinism is what matters.
  const Resolution r2 = resolve(repo, {"bash"});
  EXPECT_EQ(r.install_order[0]->name, r2.install_order[0]->name);
}

TEST(SolverTest, SatisfiesViaProvides) {
  Repository repo("r");
  Package mta = mk("sendmail", "8.11-1");
  mta.provides.push_back("smtpdaemon");
  repo.add(std::move(mta));
  repo.add(mk("mutt", "1.2-1", {"smtpdaemon"}));
  const Resolution r = resolve(repo, {"mutt"});
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(r.install_order.size(), 2u);
}

TEST(RpmDbTest, InstallMaterializesFiles) {
  vfs::FileSystem fs;
  RpmDatabase db;
  Package pkg = mk("dhcp", "2.0-5");
  pkg.size_bytes = 9000;
  pkg.files = {"/usr/sbin/dhcpd", "/etc/dhcpd.conf.sample"};
  db.install(pkg, fs);
  EXPECT_TRUE(db.installed("dhcp"));
  EXPECT_TRUE(fs.is_file("/usr/sbin/dhcpd"));
  EXPECT_EQ(fs.logical_size("/usr/sbin/dhcpd") + fs.logical_size("/etc/dhcpd.conf.sample"),
            9000u + fs.read_file("/usr/sbin/dhcpd").size() +
                fs.read_file("/etc/dhcpd.conf.sample").size());
}

TEST(RpmDbTest, UpgradeReplacesOldFiles) {
  vfs::FileSystem fs;
  RpmDatabase db;
  Package v1 = mk("tool", "1.0-1");
  v1.files = {"/usr/bin/tool", "/usr/lib/tool-1.0.so"};
  db.install(v1, fs);
  Package v2 = mk("tool", "2.0-1");
  v2.files = {"/usr/bin/tool"};
  db.install(v2, fs);
  EXPECT_EQ(db.find("tool")->evr.to_string(), "2.0-1");
  EXPECT_FALSE(fs.exists("/usr/lib/tool-1.0.so"));  // old file gone
  EXPECT_EQ(db.package_count(), 1u);
}

TEST(RpmDbTest, EraseRemovesFiles) {
  vfs::FileSystem fs;
  RpmDatabase db;
  db.install(mk("x", "1-1"), fs);
  EXPECT_TRUE(db.erase("x", fs));
  EXPECT_FALSE(fs.exists("/usr/bin/x"));
  EXPECT_FALSE(db.erase("x", fs));
}

TEST(RpmDbTest, FingerprintTracksManifest) {
  vfs::FileSystem fs1, fs2;
  RpmDatabase a, b;
  a.install(mk("p1", "1-1"), fs1);
  a.install(mk("p2", "1-1"), fs1);
  b.install(mk("p2", "1-1"), fs2);
  b.install(mk("p1", "1-1"), fs2);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());  // order independent
  b.install(mk("p1", "1-2"), fs2);
  EXPECT_NE(a.fingerprint(), b.fingerprint());  // version visible
}

TEST(RpmDbTest, StaleAgainstRepo) {
  vfs::FileSystem fs;
  RpmDatabase db;
  db.install(mk("openssl", "0.9.6-3"), fs);
  db.install(mk("bash", "2.05-8"), fs);
  Repository repo("updates");
  repo.add(mk("openssl", "0.9.6b-8"));
  repo.add(mk("bash", "2.05-8"));
  const auto stale = db.stale_against(repo);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0]->name, "openssl");
}

TEST(SynthTest, ComputeClosureCalibratedTo225MB) {
  const SynthDistro distro = make_redhat_release();
  const Resolution r = resolve(distro.repo, distro.compute_set());
  EXPECT_TRUE(r.complete()) << "missing: " << (r.missing.empty() ? "" : r.missing[0]);
  const double mb = static_cast<double>(r.total_bytes()) / (1024.0 * 1024.0);
  EXPECT_NEAR(mb, 225.0, 7.0);  // paper: "approximately 225 MB"
}

TEST(SynthTest, RealisticScale) {
  const SynthDistro distro = make_redhat_release();
  EXPECT_GT(distro.repo.package_count(), 600u);
  // Mirror carries a real distribution's bulk (hundreds of MB at least).
  EXPECT_GT(distro.repo.total_bytes(), 400ull * 1024 * 1024);
}

TEST(SynthTest, DeterministicForSameSeed) {
  const SynthDistro a = make_redhat_release();
  const SynthDistro b = make_redhat_release();
  EXPECT_EQ(a.repo.package_count(), b.repo.package_count());
  EXPECT_EQ(a.repo.total_bytes(), b.repo.total_bytes());
}

TEST(SynthTest, FrontendSupersetOfCompute) {
  const SynthDistro distro = make_redhat_release();
  const Resolution fe = resolve(distro.repo, distro.frontend_set());
  const Resolution cn = resolve(distro.repo, distro.compute_set());
  EXPECT_TRUE(fe.complete());
  EXPECT_GT(fe.install_order.size(), cn.install_order.size());
}

TEST(SynthTest, UpdateStreamMatchesPaperRates) {
  const SynthDistro distro = make_redhat_release();
  const auto stream = make_update_stream(distro);
  EXPECT_EQ(stream.size(), 124u);
  int security = 0;
  for (const auto& u : stream) {
    EXPECT_GE(u.day, 0);
    EXPECT_LE(u.day, 360);
    EXPECT_EQ(u.package.origin, Origin::kUpdate);
    EXPECT_TRUE(distro.repo.contains(u.package.name));
    if (u.package.security_fix) ++security;
  }
  EXPECT_EQ(security, 74);
  // Sorted by day.
  for (std::size_t i = 1; i < stream.size(); ++i) EXPECT_LE(stream[i - 1].day, stream[i].day);
}

TEST(SynthTest, UpdatesAreStrictUpgrades) {
  const SynthDistro distro = make_redhat_release();
  const auto stream = make_update_stream(distro);
  for (const auto& u : stream) {
    const Package* base = distro.repo.newest(u.package.name, u.package.arch);
    ASSERT_NE(base, nullptr);
    EXPECT_TRUE(base->evr < u.package.evr)
        << u.package.nevra() << " does not upgrade " << base->nevra();
  }
}

TEST(SynthTest, MyrinetDriverIsSourcePackage) {
  const SynthDistro distro = make_redhat_release();
  const Package* gm = distro.repo.newest("gm-driver");
  ASSERT_NE(gm, nullptr);
  EXPECT_TRUE(gm->is_source);
  EXPECT_GT(gm->build_seconds, 0.0);
}

}  // namespace
}  // namespace rocks::rpm
