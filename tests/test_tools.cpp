// Tests for cluster-fork / cluster-kill / cluster-status, including the
// paper's Section 6.4 examples run end-to-end against a live cluster.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "support/error.hpp"
#include "tools/cluster_tools.hpp"

namespace rocks::tools {
namespace {

class ToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster::ClusterConfig config;
    config.synth.filler_packages = 50;
    cluster_ = std::make_unique<cluster::Cluster>(config);
    for (int i = 0; i < 3; ++i) cluster_->add_node();
    cluster_->integrate_all();
    // Rack 1 holds one more node.
    cluster_->insert_ethers().set_rack(1);
    cluster_->add_node();
    cluster_->integrate_all();
  }

  std::unique_ptr<cluster::Cluster> cluster_;
};

TEST_F(ToolsTest, PaperClusterKillOnRackOne) {
  // A runaway job on every node.
  for (auto* node : cluster_->nodes()) node->launch_process("bad-job");

  ClusterTools tools(*cluster_);
  // "cluster-kill --query='select name from nodes where rack=1' bad-job"
  const ForkResult result = tools.kill("bad-job", "select name from nodes where rack=1");
  EXPECT_EQ(result.reached, (std::vector<std::string>{"compute-1-0"}));
  EXPECT_EQ(result.total_killed, 1u);
  EXPECT_EQ(cluster_->node("compute-1-0")->process_count("bad-job"), 0u);
  EXPECT_EQ(cluster_->node("compute-0-0")->process_count("bad-job"), 1u);
}

TEST_F(ToolsTest, PaperClusterKillMembershipJoin) {
  for (auto* node : cluster_->nodes()) node->launch_process("bad-job");
  ClusterTools tools(*cluster_);
  // The default query is the paper's multi-table join over memberships.
  const ForkResult result = tools.kill("bad-job");
  EXPECT_EQ(result.reached.size(), 4u);  // every compute node, no frontend
  EXPECT_EQ(result.total_killed, 4u);
}

TEST_F(ToolsTest, KillSkipsDownNodes) {
  for (auto* node : cluster_->nodes()) node->launch_process("bad-job");
  cluster_->node("compute-0-1")->power_off();
  ClusterTools tools(*cluster_);
  const ForkResult result = tools.kill("bad-job");
  EXPECT_EQ(result.reached.size(), 3u);
  EXPECT_EQ(result.unreachable, (std::vector<std::string>{"compute-0-1"}));
}

TEST_F(ToolsTest, QueryNamingFrontendReportsUnknownNode) {
  ClusterTools tools(*cluster_);
  const ForkResult result =
      tools.fork_query("select name from nodes where name = 'frontend-0'",
                       [](cluster::Node&) {});
  EXPECT_TRUE(result.reached.empty());
  EXPECT_EQ(result.unknown, (std::vector<std::string>{"frontend-0"}));
}

TEST_F(ToolsTest, ForkGlobSelectsByPattern) {
  ClusterTools tools(*cluster_);
  std::vector<std::string> touched;
  tools.fork_glob("compute-0-*",
                  [&](cluster::Node& node) { touched.push_back(node.hostname()); });
  EXPECT_EQ(touched, (std::vector<std::string>{"compute-0-0", "compute-0-1", "compute-0-2"}));
}

TEST_F(ToolsTest, StatusReportListsAllNodes) {
  ClusterTools tools(*cluster_);
  const std::string report = tools.status_report();
  EXPECT_NE(report.find("compute-0-0"), std::string::npos);
  EXPECT_NE(report.find("compute-1-0"), std::string::npos);
  EXPECT_NE(report.find("running"), std::string::npos);
}

TEST_F(ToolsTest, LaunchProcessRequiresRunningNode) {
  cluster::Node& bare = cluster_->add_node();
  EXPECT_THROW(bare.launch_process("x"), StateError);
}

TEST_F(ToolsTest, EngineStatusReportShowsMvccVitals) {
  sqldb::Database& db = cluster_->frontend().db();
  // Supersede some versions and leave one view pinned, so every section of
  // the report has something real to show.
  db.execute("UPDATE nodes SET rack = rack WHERE rack >= 0");
  sqldb::ReadView view = db.read_view();
  db.execute("UPDATE nodes SET rack = rack WHERE rack >= 0");

  const std::string report = ClusterTools::engine_status_report(db);
  EXPECT_NE(report.find("mvcc engine:"), std::string::npos);
  EXPECT_NE(report.find("commit ts: "), std::string::npos);
  EXPECT_NE(report.find("1 active"), std::string::npos);  // the pinned view
  EXPECT_NE(report.find("retired pending"), std::string::npos);
  EXPECT_NE(report.find("chains: max "), std::string::npos);
  // The per-table section lists the cluster schema's tables.
  EXPECT_NE(report.find("nodes"), std::string::npos);
  EXPECT_NE(report.find("memberships"), std::string::npos);

  const sqldb::MvccStatus status = db.mvcc_status();
  EXPECT_EQ(status.active_read_views, 1u);
  // The second UPDATE's superseded versions are pinned behind the view.
  EXPECT_GT(status.retired_pending, 0u);
  EXPECT_GT(status.max_chain, 1u);
}

}  // namespace
}  // namespace rocks::tools
