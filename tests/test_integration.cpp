// Cross-module integration tests: the full paper workflows end to end, and
// property-style parameterized sweeps over cluster size and calibration.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baselines/cfengine.hpp"
#include "cluster/cluster.hpp"
#include "rpm/solver.hpp"
#include "support/strings.hpp"
#include "tools/cluster_tools.hpp"

namespace rocks {
namespace {

cluster::ClusterConfig quick_config() {
  cluster::ClusterConfig config;
  config.synth.filler_packages = 50;
  return config;
}

TEST(Integration, InstalledFilesMatchKickstartResolution) {
  // What the node actually has after install == what the kickstart profile
  // resolves to against the distribution. The whole pipeline agrees.
  cluster::Cluster cluster(quick_config());
  cluster.add_node();
  cluster.integrate_all();
  cluster::Node* node = cluster.node("compute-0-0");

  const auto profile =
      cluster.frontend().kickstart_server().handle_request_file(node->ip());
  const rpm::Resolution resolution =
      rpm::resolve(cluster.frontend().distribution(), profile.packages(), node->arch());
  ASSERT_TRUE(resolution.complete());

  const auto manifest = node->rpmdb().manifest();
  EXPECT_EQ(manifest.size(), resolution.install_order.size());
  std::set<std::string> expected;
  for (const rpm::Package* pkg : resolution.install_order) expected.insert(pkg->nevra());
  for (const auto& entry : manifest) EXPECT_TRUE(expected.contains(entry)) << entry;

  // And the files are really on disk: every installed package's first file.
  for (const rpm::Package* pkg : resolution.install_order) {
    if (pkg->files.empty()) continue;
    EXPECT_TRUE(node->fs().is_file(pkg->files[0])) << pkg->nevra() << " " << pkg->files[0];
  }
}

TEST(Integration, DatabaseIsTheSingleSourceOfTruth) {
  cluster::Cluster cluster(quick_config());
  for (int i = 0; i < 3; ++i) cluster.add_node();
  cluster.integrate_all();
  auto& fe = cluster.frontend();

  // Every node row appears in every generated artifact.
  const auto rows = fe.db().execute("SELECT name, ip, mac FROM nodes ORDER BY id");
  const std::string hosts = fe.fs().read_file("/etc/hosts");
  const std::string dhcpd = fe.fs().read_file("/etc/dhcpd.conf");
  for (const auto& row : rows.rows) {
    EXPECT_NE(hosts.find(row[0].to_string()), std::string::npos) << row[0].to_string();
    EXPECT_NE(hosts.find(row[1].to_string()), std::string::npos);
    if (row[0].to_string() != "frontend-0") {
      EXPECT_NE(dhcpd.find(row[2].to_string()), std::string::npos);
    }
  }

  // Deleting a node from the database and regenerating removes it
  // everywhere — the database drives, files follow.
  fe.db().execute("DELETE FROM nodes WHERE name = 'compute-0-1'");
  fe.regenerate_services();
  EXPECT_EQ(fe.fs().read_file("/etc/hosts").find("compute-0-1"), std::string::npos);
  EXPECT_EQ(fe.fs().read_file("/etc/dhcpd.conf").find("compute-0-1"), std::string::npos);
  EXPECT_FALSE(fe.dhcp().knows(cluster.node("compute-0-1")->mac()));
}

TEST(Integration, GraphEditChangesWhatNodesInstall) {
  // The Section 6.2.3 customization loop: edit the XML infrastructure,
  // rebuild, reinstall.
  cluster::Cluster cluster(quick_config());
  cluster.add_node();
  cluster.integrate_all();
  cluster::Node* node = cluster.node("compute-0-0");
  EXPECT_TRUE(node->rpmdb().installed("gm-driver"));
  const double with_driver = node->last_install_duration();

  cluster.frontend().graph().remove_edge("compute", "myrinet");
  cluster.frontend().rebuild_distribution();
  cluster.shoot_node("compute-0-0");
  cluster.run_until_stable();
  // The driver source package is gone (nothing requests it); note "gm"
  // itself survives as a dependency of mpich-gm. No rebuild -> faster.
  EXPECT_FALSE(node->rpmdb().installed("gm-driver"));
  EXPECT_TRUE(node->rpmdb().installed("mpich-gm"));
  EXPECT_LT(node->last_install_duration(), with_driver);
}

TEST(Integration, CustomKernelWorkflow) {
  // Section 3.3: craft a kernel RPM, bind it into a new distribution with
  // rocks-dist, reinstall the desired nodes.
  cluster::Cluster cluster(quick_config());
  cluster.add_node();
  cluster.integrate_all();
  cluster::Node* node = cluster.node("compute-0-0");
  const std::string stock = node->rpmdb().find("kernel")->evr.to_string();

  rpm::Package custom = *cluster.distro().repo.newest("kernel");
  custom.evr.release += ".custom1";
  custom.origin = rpm::Origin::kLocal;
  cluster.frontend().rocksdist().add_local(custom);
  cluster.frontend().rebuild_distribution();
  cluster.shoot_node("compute-0-0");
  cluster.run_until_stable();

  EXPECT_EQ(node->rpmdb().find("kernel")->evr.to_string(), custom.evr.to_string());
  EXPECT_NE(node->rpmdb().find("kernel")->evr.to_string(), stock);
}

TEST(Integration, ReinstallBeatsParityCheckOnResidualDrift) {
  // The paper's core claim in miniature.
  cluster::Cluster cluster(quick_config());
  for (int i = 0; i < 2; ++i) cluster.add_node();
  cluster.integrate_all();
  cluster::Node* drifted = cluster.node("compute-0-1");
  drifted->corrupt_file("/usr/local/lib/secret-dep.so", "unmanaged");
  drifted->corrupt_file("/etc/hosts", "stale copy");

  baselines::CfengineAgent agent;
  agent.converge(*drifted, *cluster.node("compute-0-0"));
  EXPECT_TRUE(drifted->fs().exists("/usr/local/lib/secret-dep.so"));  // residual

  cluster.shoot_node("compute-0-1");
  cluster.run_until_stable();
  EXPECT_FALSE(drifted->fs().exists("/usr/local/lib/secret-dep.so"));
  EXPECT_EQ(drifted->software_fingerprint(),
            cluster.node("compute-0-0")->software_fingerprint());
}

// --- property sweeps -------------------------------------------------------

class PulseSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PulseSweep, ConcurrentReinstallsAllComplete) {
  const std::size_t n = GetParam();
  cluster::Cluster cluster(quick_config());
  for (std::size_t i = 0; i < n; ++i) cluster.add_node();
  cluster.integrate_all();
  const double makespan = cluster.reinstall_all();
  // Invariants: every node back, exactly 2 installs each, consistent, and
  // makespan bounded below by the single-node time and above by full
  // serialization.
  for (auto* node : cluster.nodes()) {
    EXPECT_TRUE(node->is_running());
    EXPECT_EQ(node->install_count(), 2);
  }
  EXPECT_TRUE(cluster.consistent());
  EXPECT_GE(makespan, 617.0);
  EXPECT_LE(makespan, 618.0 + static_cast<double>(n) * 225.0 / 7.5 + 1.0);
  // Server accounting: the HTTP servers sourced exactly what the nodes
  // downloaded (two installs each), nothing lost or double-counted.
  EXPECT_NEAR(
      cluster.frontend().http().total_bytes_served(),
      static_cast<double>(n) *
          static_cast<double>(cluster.node("compute-0-0")->bytes_downloaded_total()),
      static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PulseSweep, ::testing::Values(1, 2, 5, 9, 16));

class MonotonicSweep : public ::testing::Test {};

TEST_F(MonotonicSweep, MakespanNonDecreasingInClusterSize) {
  double previous = 0.0;
  for (std::size_t n : {2u, 8u, 12u, 20u}) {
    cluster::Cluster cluster(quick_config());
    for (std::size_t i = 0; i < n; ++i) cluster.add_node();
    cluster.integrate_all();
    const double makespan = cluster.reinstall_all();
    EXPECT_GE(makespan, previous - 1.0) << n << " nodes";
    previous = makespan;
  }
}

TEST(IntegrationProperty, FingerprintInvariantUnderReinstall) {
  // Reinstalling any subset never changes the consistent fingerprint.
  cluster::Cluster cluster(quick_config());
  for (int i = 0; i < 4; ++i) cluster.add_node();
  cluster.integrate_all();
  const auto fingerprint = cluster.node("compute-0-0")->software_fingerprint();
  cluster.shoot_node("compute-0-2");
  cluster.shoot_node("compute-0-3");
  cluster.run_until_stable();
  for (auto* node : cluster.nodes())
    EXPECT_EQ(node->software_fingerprint(), fingerprint) << node->hostname();
}

TEST(IntegrationProperty, SequentialIntegrationBindsPositions) {
  // rack/rank reflect boot order — the paper's reason for serial booting.
  cluster::Cluster cluster(quick_config());
  for (int i = 0; i < 5; ++i) cluster.add_node();
  cluster.integrate_all();
  const auto rows = cluster.frontend().db().execute(
      "SELECT name, rank FROM nodes WHERE membership = 2 ORDER BY id");
  for (std::size_t i = 0; i < rows.row_count(); ++i) {
    EXPECT_EQ(rows.rows[i][1].as_int(), static_cast<std::int64_t>(i));
    EXPECT_EQ(rows.rows[i][0].as_text(), strings::cat("compute-0-", i));
  }
}

}  // namespace
}  // namespace rocks
