// Unit tests for the database-driven config generators and the service
// manager's restart-on-change behaviour.
#include <gtest/gtest.h>

#include "kickstart/server.hpp"
#include "services/generators.hpp"
#include "services/manager.hpp"
#include "support/strings.hpp"

namespace rocks::services {
namespace {

class ServicesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kickstart::ensure_cluster_schema(db);
    kickstart::insert_node_row(db, "00:30:c1:d8:ac:80", "frontend-0", 1, 0, 0, "10.1.1.1",
                               "i386", "Gateway machine");
    kickstart::insert_node_row(db, "00:50:8b:e0:3a:a7", "compute-0-0", 2, 0, 0,
                               "10.255.255.245");
    kickstart::insert_node_row(db, "00:50:8b:e0:44:5e", "compute-0-1", 2, 0, 1,
                               "10.255.255.244");
  }

  sqldb::Database db;
};

TEST_F(ServicesTest, HostsHasEveryNode) {
  const std::string hosts = generate_hosts(db);
  EXPECT_NE(hosts.find("127.0.0.1\tlocalhost"), std::string::npos);
  EXPECT_NE(hosts.find("10.1.1.1\tfrontend-0.local frontend-0"), std::string::npos);
  EXPECT_NE(hosts.find("10.255.255.245\tcompute-0-0.local compute-0-0"), std::string::npos);
  EXPECT_NE(hosts.find("compute-0-1"), std::string::npos);
}

TEST_F(ServicesTest, DhcpdConfHasStaticBindings) {
  const std::string conf = generate_dhcpd_conf(db, Ipv4(10, 1, 1, 1));
  EXPECT_NE(conf.find("subnet 10.0.0.0 netmask 255.0.0.0"), std::string::npos);
  EXPECT_NE(conf.find("next-server 10.1.1.1;"), std::string::npos);
  EXPECT_NE(conf.find("host compute-0-0 {"), std::string::npos);
  EXPECT_NE(conf.find("hardware ethernet 00:50:8b:e0:3a:a7;"), std::string::npos);
  EXPECT_NE(conf.find("fixed-address 10.255.255.245;"), std::string::npos);
}

TEST_F(ServicesTest, PbsNodesListsOnlyComputeMembership) {
  const std::string nodes = generate_pbs_nodes(db);
  EXPECT_NE(nodes.find("compute-0-0 np=2"), std::string::npos);
  EXPECT_NE(nodes.find("compute-0-1 np=2"), std::string::npos);
  EXPECT_EQ(nodes.find("frontend-0"), std::string::npos);
}

TEST_F(ServicesTest, PbsNodesOrderedByRackRank) {
  kickstart::insert_node_row(db, "00:50:8b:00:00:03", "compute-1-0", 2, 1, 0, "10.255.255.200");
  const std::string nodes = generate_pbs_nodes(db);
  const auto pos00 = nodes.find("compute-0-0");
  const auto pos01 = nodes.find("compute-0-1");
  const auto pos10 = nodes.find("compute-1-0");
  EXPECT_LT(pos00, pos01);
  EXPECT_LT(pos01, pos10);
}

TEST_F(ServicesTest, NisPasswdFromUsersTable) {
  ensure_users_table(db);
  db.execute("INSERT INTO users VALUES ('mjk', 501, '/export/home/mjk', '/bin/tcsh')");
  const std::string passwd = generate_nis_passwd(db);
  EXPECT_NE(passwd.find("root:x:0:0::/root:/bin/bash"), std::string::npos);
  EXPECT_NE(passwd.find("mjk:x:501:501::/export/home/mjk:/bin/tcsh"), std::string::npos);
}

TEST_F(ServicesTest, NfsExportsHomeDirectories) {
  const std::string exports = generate_nfs_exports(db);
  EXPECT_NE(exports.find("/export/home 10.0.0.0/255.0.0.0(rw"), std::string::npos);
}

TEST_F(ServicesTest, ManagerRestartsOnlyChangedServices) {
  ServiceManager manager;
  vfs::FileSystem fs;
  manager.register_service("hosts", "/etc/hosts", generate_hosts);
  manager.register_service("dhcpd", "/etc/dhcpd.conf", [](sqldb::Database& db) {
    return generate_dhcpd_conf(db, Ipv4(10, 1, 1, 1));
  });

  // First regeneration: everything is new, everything restarts.
  auto restarted = manager.regenerate(db, fs);
  EXPECT_EQ(restarted.size(), 2u);
  EXPECT_TRUE(fs.is_file("/etc/hosts"));

  // No database change: nothing restarts.
  restarted = manager.regenerate(db, fs);
  EXPECT_TRUE(restarted.empty());
  EXPECT_EQ(manager.total_restarts(), 2u);

  // New node: both files change, both services restart once more.
  kickstart::insert_node_row(db, "00:50:8b:00:00:99", "compute-0-2", 2, 0, 2, "10.255.255.243");
  restarted = manager.regenerate(db, fs);
  EXPECT_EQ(restarted.size(), 2u);
  EXPECT_EQ(manager.restarts("hosts"), 2u);
  EXPECT_NE(fs.read_file("/etc/hosts").find("compute-0-2"), std::string::npos);
}

TEST_F(ServicesTest, ManagerReportsRegisteredNames) {
  ServiceManager manager;
  manager.register_service("a", "/etc/a", generate_hosts);
  manager.register_service("b", "/etc/b", generate_hosts);
  EXPECT_EQ(manager.service_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(manager.restarts("ghost"), 0u);
}

}  // namespace
}  // namespace rocks::services
