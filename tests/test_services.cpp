// Unit tests for the database-driven config generators and the service
// manager's restart-on-change behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "kickstart/server.hpp"
#include "services/generators.hpp"
#include "services/manager.hpp"
#include "support/strings.hpp"

namespace rocks::services {
namespace {

class ServicesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kickstart::ensure_cluster_schema(db);
    kickstart::insert_node_row(db, "00:30:c1:d8:ac:80", "frontend-0", 1, 0, 0, "10.1.1.1",
                               "i386", "Gateway machine");
    kickstart::insert_node_row(db, "00:50:8b:e0:3a:a7", "compute-0-0", 2, 0, 0,
                               "10.255.255.245");
    kickstart::insert_node_row(db, "00:50:8b:e0:44:5e", "compute-0-1", 2, 0, 1,
                               "10.255.255.244");
  }

  sqldb::Database db;
};

TEST_F(ServicesTest, HostsHasEveryNode) {
  const std::string hosts = generate_hosts(db);
  EXPECT_NE(hosts.find("127.0.0.1\tlocalhost"), std::string::npos);
  EXPECT_NE(hosts.find("10.1.1.1\tfrontend-0.local frontend-0"), std::string::npos);
  EXPECT_NE(hosts.find("10.255.255.245\tcompute-0-0.local compute-0-0"), std::string::npos);
  EXPECT_NE(hosts.find("compute-0-1"), std::string::npos);
}

TEST_F(ServicesTest, DhcpdConfHasStaticBindings) {
  const std::string conf = generate_dhcpd_conf(db, Ipv4(10, 1, 1, 1));
  EXPECT_NE(conf.find("subnet 10.0.0.0 netmask 255.0.0.0"), std::string::npos);
  EXPECT_NE(conf.find("next-server 10.1.1.1;"), std::string::npos);
  EXPECT_NE(conf.find("host compute-0-0 {"), std::string::npos);
  EXPECT_NE(conf.find("hardware ethernet 00:50:8b:e0:3a:a7;"), std::string::npos);
  EXPECT_NE(conf.find("fixed-address 10.255.255.245;"), std::string::npos);
}

TEST_F(ServicesTest, PbsNodesListsOnlyComputeMembership) {
  const std::string nodes = generate_pbs_nodes(db);
  EXPECT_NE(nodes.find("compute-0-0 np=2"), std::string::npos);
  EXPECT_NE(nodes.find("compute-0-1 np=2"), std::string::npos);
  EXPECT_EQ(nodes.find("frontend-0"), std::string::npos);
}

TEST_F(ServicesTest, PbsNodesOrderedByRackRank) {
  kickstart::insert_node_row(db, "00:50:8b:00:00:03", "compute-1-0", 2, 1, 0, "10.255.255.200");
  const std::string nodes = generate_pbs_nodes(db);
  const auto pos00 = nodes.find("compute-0-0");
  const auto pos01 = nodes.find("compute-0-1");
  const auto pos10 = nodes.find("compute-1-0");
  EXPECT_LT(pos00, pos01);
  EXPECT_LT(pos01, pos10);
}

TEST_F(ServicesTest, NisPasswdFromUsersTable) {
  ensure_users_table(db);
  db.execute("INSERT INTO users VALUES ('mjk', 501, '/export/home/mjk', '/bin/tcsh')");
  const std::string passwd = generate_nis_passwd(db);
  EXPECT_NE(passwd.find("root:x:0:0::/root:/bin/bash"), std::string::npos);
  EXPECT_NE(passwd.find("mjk:x:501:501::/export/home/mjk:/bin/tcsh"), std::string::npos);
}

TEST_F(ServicesTest, NfsExportsHomeDirectories) {
  const std::string exports = generate_nfs_exports(db);
  EXPECT_NE(exports.find("/export/home 10.0.0.0/255.0.0.0(rw"), std::string::npos);
}

TEST_F(ServicesTest, ManagerRestartsOnlyChangedServices) {
  ServiceManager manager;
  vfs::FileSystem fs;
  manager.register_service("hosts", "/etc/hosts", generate_hosts);
  manager.register_service("dhcpd", "/etc/dhcpd.conf", [](sqldb::Database& db) {
    return generate_dhcpd_conf(db, Ipv4(10, 1, 1, 1));
  });

  // First regeneration: everything is new, everything restarts.
  auto report = manager.regenerate(db, fs);
  EXPECT_EQ(report.restarted.size(), 2u);
  EXPECT_TRUE(fs.is_file("/etc/hosts"));

  // No database change: nothing restarts.
  report = manager.regenerate(db, fs);
  EXPECT_TRUE(report.restarted.empty());
  EXPECT_EQ(manager.total_restarts(), 2u);

  // New node: both files change, both services restart once more.
  kickstart::insert_node_row(db, "00:50:8b:00:00:99", "compute-0-2", 2, 0, 2, "10.255.255.243");
  report = manager.regenerate(db, fs);
  EXPECT_EQ(report.restarted.size(), 2u);
  EXPECT_EQ(manager.restarts("hosts"), 2u);
  EXPECT_NE(fs.read_file("/etc/hosts").find("compute-0-2"), std::string::npos);
}

TEST_F(ServicesTest, ManagerReportsRegisteredNames) {
  ServiceManager manager;
  manager.register_service("a", "/etc/a", generate_hosts);
  manager.register_service("b", "/etc/b", generate_hosts);
  EXPECT_EQ(manager.service_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(manager.restarts("ghost"), 0u);
}

// --- dirty tracking through the change bus (DESIGN.md §10) ------------------

TEST_F(ServicesTest, ManagerDirtyTrackingSkipsCleanServices) {
  ServiceManager manager;
  vfs::FileSystem fs;
  ensure_users_table(db);
  manager.register_service("hosts", "/etc/hosts", generate_hosts, {"nodes"});
  manager.register_service("nis", "/var/yp/passwd", generate_nis_passwd, {"users"});
  manager.attach(db.journal());
  manager.regenerate(db, fs);  // services start dirty: both render
  EXPECT_EQ(manager.generator_runs("hosts"), 1u);
  EXPECT_EQ(manager.generator_runs("nis"), 1u);

  // A node change dirties hosts only; nis's generator is not even invoked.
  kickstart::insert_node_row(db, "00:50:8b:00:00:99", "compute-0-2", 2, 0, 2, "10.255.255.243");
  EXPECT_TRUE(manager.dirty("hosts"));
  EXPECT_FALSE(manager.dirty("nis"));
  const auto report = manager.regenerate(db, fs);
  EXPECT_EQ(report.restarted, (std::vector<std::string>{"hosts"}));
  EXPECT_EQ(manager.generator_runs("hosts"), 2u);
  EXPECT_EQ(manager.generator_runs("nis"), 1u);

  // And the other way round.
  db.execute("INSERT INTO users VALUES ('mjk', 501, '/export/home/mjk', '/bin/tcsh')");
  manager.regenerate(db, fs);
  EXPECT_EQ(manager.generator_runs("hosts"), 2u);
  EXPECT_EQ(manager.generator_runs("nis"), 2u);
}

TEST_F(ServicesTest, ManagerContinuesPastThrowingGenerator) {
  ServiceManager manager;
  vfs::FileSystem fs;
  bool broken = true;
  manager.register_service("flaky", "/etc/flaky.conf",
                           [&broken](sqldb::Database&) -> std::string {
                             if (broken) throw std::runtime_error("generator exploded");
                             return "ok\n";
                           });
  manager.register_service("hosts", "/etc/hosts", generate_hosts, {"nodes"});
  manager.attach(db.journal());

  auto report = manager.regenerate(db, fs);
  EXPECT_EQ(report.restarted, (std::vector<std::string>{"hosts"}));  // the flush went on
  ASSERT_EQ(report.failed, (std::vector<std::string>{"flaky"}));
  ASSERT_EQ(report.failure_reasons.size(), 1u);
  EXPECT_NE(report.failure_reasons[0].find("exploded"), std::string::npos);
  EXPECT_FALSE(fs.is_file("/etc/flaky.conf"));
  EXPECT_TRUE(fs.is_file("/etc/hosts"));
  EXPECT_TRUE(manager.dirty("flaky"));  // failed services stay dirty...
  EXPECT_FALSE(manager.dirty("hosts"));

  broken = false;
  report = manager.regenerate(db, fs);  // ...and are retried on the next flush
  EXPECT_EQ(report.restarted, (std::vector<std::string>{"flaky"}));
  EXPECT_TRUE(report.failed.empty());
  EXPECT_EQ(fs.read_file("/etc/flaky.conf"), "ok\n");
}

TEST_F(ServicesTest, ManagerHashComparesAndFallsBackOnExternalEdits) {
  ServiceManager manager;
  vfs::FileSystem fs;
  manager.register_service("hosts", "/etc/hosts", generate_hosts);
  manager.regenerate(db, fs);  // first write: nothing to compare against
  EXPECT_EQ(manager.hash_compares(), 0u);
  EXPECT_EQ(manager.read_fallbacks(), 0u);

  // Unchanged content: the no-restart decision is hash-to-hash, no read.
  auto report = manager.regenerate(db, fs);
  EXPECT_TRUE(report.restarted.empty());
  EXPECT_EQ(manager.hash_compares(), 1u);
  EXPECT_EQ(manager.read_fallbacks(), 0u);

  // Hand-edited file: the hash record is stale, so the manager distrusts
  // it, byte-compares, and restores the generated content.
  fs.remove("/etc/hosts");
  fs.write_file("/etc/hosts", "# hand-edited\n");
  report = manager.regenerate(db, fs);
  EXPECT_EQ(report.restarted, (std::vector<std::string>{"hosts"}));
  EXPECT_EQ(manager.read_fallbacks(), 1u);
  EXPECT_NE(fs.read_file("/etc/hosts").find("compute-0-0"), std::string::npos);
}

// --- incremental report rendering (DESIGN.md §10) ---------------------------

TEST_F(ServicesTest, IncrementalHostsMatchesFullRenderAcrossOps) {
  IncrementalReport report(hosts_report_spec());
  EXPECT_EQ(report.render(db), generate_hosts(db));
  EXPECT_EQ(report.full_rebuilds(), 1u);  // the priming render

  kickstart::insert_node_row(db, "00:50:8b:00:00:99", "compute-0-2", 2, 0, 2, "10.255.255.243");
  db.execute("UPDATE nodes SET ip = '10.9.9.9' WHERE name = 'compute-0-1'");
  db.execute("DELETE FROM nodes WHERE name = 'compute-0-0'");
  EXPECT_EQ(report.render(db), generate_hosts(db));
  EXPECT_EQ(report.full_rebuilds(), 1u);  // served entirely by journal deltas
  EXPECT_EQ(report.delta_applies(), 1u);
}

TEST_F(ServicesTest, IncrementalDhcpdMatchesFullRenderAcrossOps) {
  const Ipv4 frontend(10, 1, 1, 1);
  IncrementalReport report(dhcpd_report_spec(frontend));
  EXPECT_EQ(report.render(db), generate_dhcpd_conf(db, frontend));

  kickstart::insert_node_row(db, "00:50:8b:00:00:99", "compute-0-2", 2, 0, 2, "10.255.255.243");
  db.execute("UPDATE nodes SET mac = '00:50:8b:ff:ff:ff' WHERE name = 'compute-0-0'");
  EXPECT_EQ(report.render(db), generate_dhcpd_conf(db, frontend));
  EXPECT_EQ(report.full_rebuilds(), 1u);
}

TEST_F(ServicesTest, IncrementalPbsDropsNodesLeavingComputeMembership) {
  IncrementalReport report(pbs_nodes_report_spec());
  EXPECT_EQ(report.render(db), generate_pbs_nodes(db));

  // Moving a node out of a compute membership erases its line via the
  // delta path (its select_one re-fetch filters it out).
  db.execute("UPDATE nodes SET membership = 1 WHERE name = 'compute-0-0'");
  EXPECT_EQ(report.render(db), generate_pbs_nodes(db));
  EXPECT_EQ(report.full_rebuilds(), 1u);
  EXPECT_EQ(report.render(db).find("compute-0-0"), std::string::npos);
}

TEST_F(ServicesTest, IncrementalPbsRescansWhenMembershipTableChanges) {
  IncrementalReport report(pbs_nodes_report_spec());
  EXPECT_EQ(report.render(db), generate_pbs_nodes(db));
  EXPECT_EQ(report.full_rebuilds(), 1u);

  // memberships is a join input, not the driving table: flipping a row
  // cannot be applied by node key, so the report rebuilds from scratch.
  db.execute("UPDATE memberships SET compute = 'no' WHERE name = 'Compute'");
  EXPECT_EQ(report.render(db), generate_pbs_nodes(db));
  EXPECT_EQ(report.full_rebuilds(), 2u);
  EXPECT_TRUE(report.render(db).find("compute-0-0") == std::string::npos);
}

TEST_F(ServicesTest, IncrementalReportSurvivesJournalTruncation) {
  db.journal().set_capacity(4);
  IncrementalReport report(hosts_report_spec());
  EXPECT_EQ(report.render(db), generate_hosts(db));

  // Ten inserts overflow the 4-record window: the report must detect the
  // truncation and rescan instead of applying a partial delta.
  for (int i = 0; i < 10; ++i)
    kickstart::insert_node_row(db, strings::cat("00:50:8b:00:01:", i),
                               strings::cat("compute-2-", i), 2, 2, i,
                               strings::cat("10.255.254.", i));
  EXPECT_EQ(report.render(db), generate_hosts(db));
  EXPECT_EQ(report.full_rebuilds(), 2u);
  EXPECT_EQ(report.delta_applies(), 0u);
}

TEST_F(ServicesTest, IncrementalReportsMatchFullRenderUnderRandomChurn) {
  const Ipv4 frontend(10, 1, 1, 1);
  IncrementalReport hosts(hosts_report_spec());
  IncrementalReport dhcpd(dhcpd_report_spec(frontend));
  IncrementalReport pbs(pbs_nodes_report_spec());
  const auto check = [&] {
    EXPECT_EQ(hosts.render(db), generate_hosts(db));
    EXPECT_EQ(dhcpd.render(db), generate_dhcpd_conf(db, frontend));
    EXPECT_EQ(pbs.render(db), generate_pbs_nodes(db));
  };
  check();

  // Deterministic LCG so failures reproduce.
  std::uint64_t rng = 0x2545F4914F6CDD1DULL;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 33;
  };
  int serial = 0;
  for (int step = 0; step < 120; ++step) {
    const auto ids = db.query_column("SELECT id FROM nodes");
    switch (next() % 5) {
      case 0:
      case 1: {  // register a node (sometimes non-compute)
        const int membership = next() % 3 == 0 ? 1 : 2;
        kickstart::insert_node_row(db, strings::cat("00:50:8b:99:00:", serial),
                                   strings::cat("churn-", serial),
                                   membership, static_cast<int>(next() % 3),
                                   static_cast<int>(next() % 8),
                                   strings::cat("10.200.0.", serial));
        ++serial;
        break;
      }
      case 2:  // move a node to another cabinet (pbs sort key changes)
        if (!ids.empty())
          db.execute(strings::cat("UPDATE nodes SET rack = ", next() % 3, " WHERE id = ",
                                  ids[next() % ids.size()]));
        break;
      case 3:  // flip a node's membership (pbs line appears/disappears)
        if (!ids.empty())
          db.execute(strings::cat("UPDATE nodes SET membership = ", next() % 3 == 0 ? 1 : 2,
                                  " WHERE id = ", ids[next() % ids.size()]));
        break;
      case 4:  // retire a node
        if (!ids.empty())
          db.execute(strings::cat("DELETE FROM nodes WHERE id = ", ids[next() % ids.size()]));
        break;
    }
    if (step % 10 == 9) check();
  }
  check();
  // The churn was served incrementally, not by repeated rescans.
  EXPECT_EQ(hosts.full_rebuilds(), 1u);
  EXPECT_GT(hosts.delta_applies(), 0u);
}

}  // namespace
}  // namespace rocks::services
