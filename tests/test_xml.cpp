// Unit tests for the XML engine, including a byte-exact exercise of the
// paper's Figure 2 node file.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace rocks::xml {
namespace {

TEST(XmlParser, SimpleElement) {
  const Element root = parse_root("<A/>");
  EXPECT_EQ(root.name(), "A");
  EXPECT_TRUE(root.children().empty());
}

TEST(XmlParser, AttributesBothQuoteStyles) {
  const Element root = parse_root(R"(<NODE name="compute" arch='ia64'/>)");
  EXPECT_EQ(root.attribute("name"), "compute");
  EXPECT_EQ(root.attribute("arch"), "ia64");
  EXPECT_FALSE(root.attribute("missing").has_value());
  EXPECT_EQ(root.attribute_or("missing", "dflt"), "dflt");
}

TEST(XmlParser, NestedElementsAndText) {
  const Element root = parse_root("<A><B>hello</B><B>world</B><C/></A>");
  const auto bs = root.children_named("B");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->text(), "hello");
  EXPECT_EQ(bs[1]->text(), "world");
  EXPECT_NE(root.first_child("C"), nullptr);
  EXPECT_EQ(root.first_child("Z"), nullptr);
}

TEST(XmlParser, DeclarationCaptured) {
  const Document doc = parse(R"(<?XML VERSION="1.0" STANDALONE="no"?><A/>)");
  EXPECT_EQ(doc.declaration, R"(XML VERSION="1.0" STANDALONE="no")");
  EXPECT_EQ(doc.root.name(), "A");
}

TEST(XmlParser, CommentsDiscardedEvenInsideContent) {
  const Element root = parse_root("<A>pre<!-- tell dhcp just to listen to eth0 -->post</A>");
  EXPECT_EQ(root.text(), "prepost");
}

TEST(XmlParser, EntitiesDecoded) {
  const Element root = parse_root("<A>a &lt; b &amp;&amp; c &gt; d &quot;q&quot;</A>");
  EXPECT_EQ(root.text(), "a < b && c > d \"q\"");
}

TEST(XmlParser, NumericEntities) {
  EXPECT_EQ(decode_entities("&#65;&#x42;"), "AB");
  EXPECT_EQ(decode_entities("&#junk;"), "&#junk;");
  EXPECT_EQ(decode_entities("a&b"), "a&b");  // lenient bare ampersand
  EXPECT_EQ(decode_entities("&unknown;"), "&unknown;");
}

TEST(XmlParser, CdataKeptVerbatim) {
  const Element root = parse_root("<A><![CDATA[<not-xml> & raw]]></A>");
  EXPECT_EQ(root.text(), "<not-xml> & raw");
}

TEST(XmlParser, MismatchedTagThrowsWithPosition) {
  try {
    (void)parse_root("<A>\n  <B></C>\n</A>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("mismatched"), std::string::npos);
  }
}

TEST(XmlParser, ErrorsOnGarbage) {
  EXPECT_THROW(parse_root(""), ParseError);
  EXPECT_THROW(parse_root("<A>"), ParseError);
  EXPECT_THROW(parse_root("<A></A><B/>"), ParseError);
  EXPECT_THROW(parse_root("<A attr></A>"), ParseError);
  EXPECT_THROW(parse_root("<A attr=novalue/>"), ParseError);
  EXPECT_THROW(parse_root("plain text"), ParseError);
}

// The paper's Figure 2: the DHCP-server node file, awk script and all.
constexpr const char* kFigure2 = R"(<?XML VERSION="1.0" STANDALONE="no"?>
<KICKSTART>
        <DESCRIPTION>Setup the DHCP server for the cluster</DESCRIPTION>
        <PACKAGE>dhcp</PACKAGE>
        <POST>
                <!-- tell dhcp just to listen to eth0 -->
                awk ' \
                        /^DHCPD_INTERFACES/ {
                                printf("DHCPD_INTERFACES=\"eth0\"\n");
                                next;
                        }
                        {
                                print $0;
                        } ' /etc/sysconfig/dhcpd > /tmp/dhcpd
                mv /tmp/dhcpd /etc/sysconfig/dhcpd
        </POST>
</KICKSTART>
)";

TEST(XmlParser, Figure2NodeFile) {
  const Document doc = parse(kFigure2);
  EXPECT_EQ(doc.root.name(), "KICKSTART");
  const Element* desc = doc.root.first_child("DESCRIPTION");
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(desc->text(), "Setup the DHCP server for the cluster");
  const Element* pkg = doc.root.first_child("PACKAGE");
  ASSERT_NE(pkg, nullptr);
  EXPECT_EQ(pkg->text(), "dhcp");
  const Element* post = doc.root.first_child("POST");
  ASSERT_NE(post, nullptr);
  // The awk script survives, the XML comment does not.
  EXPECT_NE(post->text().find("DHCPD_INTERFACES=\\\"eth0\\\""), std::string::npos);
  EXPECT_NE(post->text().find("mv /tmp/dhcpd /etc/sysconfig/dhcpd"), std::string::npos);
  EXPECT_EQ(post->text().find("tell dhcp"), std::string::npos);
}

TEST(XmlWriter, RoundTripsElementOnlyTree) {
  Element root("GRAPH");
  Element edge("EDGE");
  edge.set_attribute("FROM", "compute");
  edge.set_attribute("TO", "mpi");
  root.add_child(edge);
  const std::string text = write(root);
  const Element reparsed = parse_root(text);
  ASSERT_EQ(reparsed.children_named("EDGE").size(), 1u);
  EXPECT_EQ(reparsed.children_named("EDGE")[0]->attribute("FROM"), "compute");
}

TEST(XmlWriter, EscapesSpecialCharacters) {
  Element root("A");
  root.set_attribute("v", "a<b\"c&d");
  root.add_text("x < y & z");
  const std::string text = write(root);
  const Element reparsed = parse_root(text);
  EXPECT_EQ(reparsed.attribute("v"), "a<b\"c&d");
  EXPECT_EQ(reparsed.text(), "x < y & z");
}

TEST(XmlWriter, MixedContentPreservedOnRoundTrip) {
  const Element original = parse_root("<POST>line1\nline2 with $vars and \"quotes\"</POST>");
  const Element reparsed = parse_root(write(original));
  EXPECT_EQ(reparsed.text(), original.text());
}

TEST(XmlWriter, DocumentIncludesDeclaration) {
  Document doc;
  doc.declaration = R"(XML VERSION="1.0")";
  doc.root = Element("A");
  const std::string text = write(doc);
  EXPECT_EQ(text.rfind("<?XML", 0), 0u);
}

TEST(XmlDom, NodeCopySemantics) {
  Element root("A");
  Element child("B");
  child.add_text("t");
  root.add_child(child);
  Element copy = root;  // deep copy via Node copy ctor
  copy.children()[0].element_value().set_name("C");
  EXPECT_EQ(root.children()[0].element_value().name(), "B");
  EXPECT_EQ(copy.children()[0].element_value().name(), "C");
}

TEST(XmlParser, DeepNesting) {
  std::string text;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) text += "<N>";
  text += "x";
  for (int i = 0; i < kDepth; ++i) text += "</N>";
  const Element root = parse_root(text);
  const Element* cursor = &root;
  int depth = 1;
  while (cursor->first_child("N") != nullptr) {
    cursor = cursor->first_child("N");
    ++depth;
  }
  EXPECT_EQ(depth, kDepth);
  EXPECT_EQ(cursor->text(), "x");
}

TEST(XmlParser, AttributeEntitiesDecoded) {
  const Element root = parse_root(R"(<A v="a &amp; b &lt;c&gt; &quot;d&quot;"/>)");
  EXPECT_EQ(root.attribute("v"), "a & b <c> \"d\"");
}

TEST(XmlParser, WhitespaceAroundAttributes) {
  const Element root = parse_root("<A  name = \"x\"   other='y' />");
  EXPECT_EQ(root.attribute("name"), "x");
  EXPECT_EQ(root.attribute("other"), "y");
}

TEST(XmlParser, DuplicateAttributeLastWins) {
  const Element root = parse_root(R"(<A v="1" v="2"/>)");
  EXPECT_EQ(root.attribute("v"), "2");
  EXPECT_EQ(root.attributes().size(), 1u);
}

TEST(XmlWriter, RoundTripStressManyChildren) {
  Element root("GRAPH");
  for (int i = 0; i < 100; ++i) {
    Element edge("EDGE");
    edge.set_attribute("FROM", strings::cat("n", i));
    edge.set_attribute("TO", strings::cat("n", i + 1));
    root.add_child(edge);
  }
  const Element reparsed = parse_root(write(root));
  EXPECT_EQ(reparsed.children_named("EDGE").size(), 100u);
  EXPECT_EQ(reparsed.children_named("EDGE")[99]->attribute("TO"), "n100");
}

TEST(XmlDom, KindAccessorsThrowOnMisuse) {
  Node text = Node::text("hi");
  EXPECT_THROW((void)text.element_value(), StateError);
  Node elem = Node::element(Element("A"));
  EXPECT_THROW((void)elem.text_value(), StateError);
}

}  // namespace
}  // namespace rocks::xml
