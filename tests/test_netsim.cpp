// Unit tests for the discrete-event engine, the max-min flow model (the
// physics behind Table I), HTTP serving, DHCP, syslog, and the PDU.
#include <gtest/gtest.h>

#include <cmath>

#include "netsim/dhcp.hpp"
#include "netsim/engine.hpp"
#include "netsim/flow.hpp"
#include "netsim/http.hpp"
#include "netsim/power.hpp"
#include "netsim/syslog.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace rocks::netsim {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule(1.0, [&] { sim.schedule(2.0, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_THROW(sim.run_until(5.0), StateError);
  EXPECT_THROW(sim.schedule(-1.0, [] {}), StateError);
}

TEST(SimulatorTest, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(5.0, [&] { ++count; });
  sim.run_until(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(FlowTest, SingleFlowServerLimited) {
  Simulator sim;
  FairShareChannel ch(sim, 7.5 * kMB);
  double done_at = -1;
  ch.start(225.0 * kMB, /*uncapped*/ 0.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 225.0 / 7.5, 0.01);  // exactly the micro-benchmark
}

TEST(FlowTest, SingleFlowClientLimited) {
  Simulator sim;
  FairShareChannel ch(sim, 7.5 * kMB);
  double done_at = -1;
  ch.start(225.0 * kMB, 1.0 * kMB, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 225.0, 0.01);  // 1 MB/s demand cap binds
}

TEST(FlowTest, SevenCappedFlowsAllRunAtFullSpeed) {
  // The paper's model: a 7 MB/s server supports 7 concurrent 1 MB/s installs
  // at full speed.
  Simulator sim;
  FairShareChannel ch(sim, 7.0 * kMB);
  std::vector<double> done(7, -1);
  for (int i = 0; i < 7; ++i)
    ch.start(225.0 * kMB, 1.0 * kMB, [&done, i, &sim] { done[i] = sim.now(); });
  sim.run();
  for (int i = 0; i < 7; ++i) EXPECT_NEAR(done[i], 225.0, 0.5);
}

TEST(FlowTest, OversubscriptionSlowsEveryoneEqually) {
  Simulator sim;
  FairShareChannel ch(sim, 7.0 * kMB);
  std::vector<double> done(14, -1);
  for (int i = 0; i < 14; ++i)
    ch.start(225.0 * kMB, 1.0 * kMB, [&done, i, &sim] { done[i] = sim.now(); });
  sim.run();
  for (int i = 0; i < 14; ++i) EXPECT_NEAR(done[i], 450.0, 0.5);  // half rate
}

TEST(FlowTest, MaxMinRespectsHeterogeneousCaps) {
  // Two flows capped at 1, one uncapped, capacity 7: the uncapped flow gets
  // the residual 5.
  Simulator sim;
  FairShareChannel ch(sim, 7.0);
  ch.start(1e9, 1.0, nullptr);
  ch.start(1e9, 1.0, nullptr);
  const FlowId big = ch.start(1e9, 0.0, nullptr);
  EXPECT_NEAR(ch.rate_of(big), 5.0, 1e-9);
}

TEST(FlowTest, DepartureRedistributesBandwidth) {
  Simulator sim;
  FairShareChannel ch(sim, 10.0);
  double small_done = -1, big_done = -1;
  ch.start(50.0, 0.0, [&] { small_done = sim.now(); });   // 5/s share -> 10s
  ch.start(100.0, 0.0, [&] { big_done = sim.now(); });
  sim.run();
  EXPECT_NEAR(small_done, 10.0, 1e-6);
  // Big flow: 50 bytes in the first 10 s, then full 10/s for the last 50.
  EXPECT_NEAR(big_done, 15.0, 1e-6);
}

TEST(FlowTest, StaggeredArrivalsAccountedExactly) {
  Simulator sim;
  FairShareChannel ch(sim, 10.0);
  double first_done = -1;
  ch.start(100.0, 0.0, [&] { first_done = sim.now(); });
  sim.schedule(5.0, [&] { ch.start(100.0, 0.0, nullptr); });
  sim.run_until(20.0);
  // First flow: 50 bytes alone (5 s), then shares 5/s -> 10 more seconds.
  EXPECT_NEAR(first_done, 15.0, 1e-6);
}

TEST(FlowTest, AbortReturnsDeliveredBytesAndFreesBandwidth) {
  Simulator sim;
  FairShareChannel ch(sim, 10.0);
  const FlowId a = ch.start(1000.0, 0.0, nullptr);
  double b_done = -1;
  ch.start(100.0, 0.0, [&] { b_done = sim.now(); });
  sim.schedule(4.0, [&] {
    const double got = ch.abort(a);
    EXPECT_NEAR(got, 20.0, 1e-6);  // 4 s at a 5/s share
  });
  sim.run();
  // b: 20 bytes by t=4 (shared), then 80 bytes at 10/s -> t=12.
  EXPECT_NEAR(b_done, 12.0, 1e-6);
}

TEST(FlowTest, ZeroByteFlowCompletesImmediately) {
  Simulator sim;
  FairShareChannel ch(sim, 10.0);
  bool done = false;
  ch.start(0.0, 0.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(FlowTest, TotalDeliveredAccumulates) {
  Simulator sim;
  FairShareChannel ch(sim, 10.0);
  ch.start(30.0, 0.0, nullptr);
  ch.start(70.0, 0.0, nullptr);
  sim.run();
  EXPECT_NEAR(ch.total_delivered(), 100.0, 1e-6);
  EXPECT_EQ(ch.active_flows(), 0u);
}

TEST(FlowTest, CapacityChangeMidFlight) {
  Simulator sim;
  FairShareChannel ch(sim, 10.0);
  double done = -1;
  ch.start(100.0, 0.0, [&] { done = sim.now(); });
  sim.schedule(5.0, [&] { ch.set_capacity(50.0); });  // GigE upgrade
  sim.run();
  EXPECT_NEAR(done, 6.0, 1e-6);  // 50 bytes in 5 s, then 50 at 50/s
}

TEST(HttpTest, StatsTrackRequestsAndBytes) {
  Simulator sim;
  HttpServer server(sim, "frontend-0", 7.5 * kMB);
  server.serve(10.0 * kMB, 0.0, nullptr);
  server.serve(20.0 * kMB, 0.0, nullptr);
  sim.run();
  EXPECT_EQ(server.stats().requests, 2u);
  EXPECT_NEAR(server.stats().bytes_served, 30.0 * kMB, 1.0);
}

TEST(HttpTest, AbortCorrectsBytesServed) {
  Simulator sim;
  HttpServer server(sim, "frontend-0", 10.0);
  const FlowId id = server.serve(100.0, 0.0, nullptr);
  sim.schedule(2.0, [&] { server.abort(id); });
  sim.run();
  EXPECT_NEAR(server.stats().bytes_served, 20.0, 1e-6);
}

TEST(HttpTest, GroupBalancesByLeastConnections) {
  Simulator sim;
  HttpServerGroup group(sim, 7.5 * kMB, 2);
  group.serve(100.0 * kMB, 1.0 * kMB, nullptr);
  group.serve(100.0 * kMB, 1.0 * kMB, nullptr);
  group.serve(100.0 * kMB, 1.0 * kMB, nullptr);
  EXPECT_EQ(group.server(0).active_downloads() + group.server(1).active_downloads(), 3u);
  EXPECT_GE(group.server(0).active_downloads(), 1u);
  EXPECT_GE(group.server(1).active_downloads(), 1u);
}

TEST(HttpTest, NReplicasGiveNTimesThroughput) {
  // Paper Section 6.3: "By deploying N web servers, one can support N times
  // the number of concurrent full-speed reinstallations".
  constexpr int kNodes = 14;
  const auto finish_time = [&](std::size_t replicas) {
    Simulator sim;
    HttpServerGroup group(sim, 7.0 * kMB, replicas);
    for (int i = 0; i < kNodes; ++i) group.serve(225.0 * kMB, 1.0 * kMB, nullptr);
    return sim.run();
  };
  EXPECT_NEAR(finish_time(2), 225.0, 1.0);      // 14 nodes over 2 servers: full speed
  EXPECT_NEAR(finish_time(1), 450.0, 1.0);      // one server: half speed
}

TEST(HttpTest, PerStreamCapBindsUncappedClients) {
  Simulator sim;
  HttpServer server(sim, "web", 11.875 * kMB);
  server.set_per_stream_cap(7.5 * kMB);
  double done_at = -1;
  server.serve(225.0 * kMB, 0.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 30.0, 0.01);  // 7.5 MB/s, not the NIC's 11.875
}

TEST(HttpTest, PerStreamCapCombinesWithClientCap) {
  Simulator sim;
  HttpServer server(sim, "web", 100.0);
  server.set_per_stream_cap(10.0);
  const FlowId tight = server.serve(1e9, 4.0, nullptr);   // client cap binds
  const FlowId loose = server.serve(1e9, 50.0, nullptr);  // stream cap binds
  EXPECT_NEAR(server.rate_of(tight), 4.0, 1e-9);
  EXPECT_NEAR(server.rate_of(loose), 10.0, 1e-9);
}

TEST(HttpTest, GroupPerStreamCapAppliesToAllReplicas) {
  Simulator sim;
  HttpServerGroup group(sim, 100.0, 3);
  group.set_per_stream_cap(5.0);
  for (int i = 0; i < 3; ++i) {
    const auto ticket = group.serve(1e9, 0.0, nullptr);
    EXPECT_NEAR(ticket.server->rate_of(ticket.flow), 5.0, 1e-9);
  }
}

// Property test: random arrivals, sizes, caps, and aborts — the simulation
// must terminate (no zero-length-event livelock, the bug fixed in the flow
// scheduler) and conserve bytes exactly.
class FlowConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowConservation, TerminatesAndConservesBytes) {
  rocks::Rng rng(GetParam());
  Simulator sim;
  FairShareChannel ch(sim, rng.next_double_range(1.0, 20.0) * kMB);
  double expected = 0.0;
  double aborted_delivered = 0.0;
  std::vector<FlowId> live;

  for (int i = 0; i < 40; ++i) {
    const double at = rng.next_double_range(0.0, 300.0);
    const double bytes = rng.next_double_range(0.0, 50.0) * kMB;
    const double cap = rng.chance(0.5) ? rng.next_double_range(0.2, 3.0) * kMB : 0.0;
    expected += bytes;
    sim.schedule(at, [&ch, &live, bytes, cap] {
      live.push_back(ch.start(bytes, cap, nullptr));
    });
  }
  // A few random aborts mid-stream.
  for (int i = 0; i < 5; ++i) {
    const double at = rng.next_double_range(50.0, 250.0);
    sim.schedule(at, [&] {
      if (live.empty()) return;
      const FlowId victim = live[rng.next_below(live.size())];
      expected -= ch.remaining(victim);
      aborted_delivered += 0.0;  // delivered bytes stay counted in expected
      ch.abort(victim);
    });
  }
  sim.run();  // must terminate
  EXPECT_EQ(ch.active_flows(), 0u);
  EXPECT_NEAR(ch.total_delivered(), expected + aborted_delivered, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservation,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(DhcpTest, KnownMacGetsLeaseUnknownGetsSyslog) {
  Simulator sim;
  SyslogBus syslog;
  DhcpServer dhcp(sim, syslog, "frontend-0", Ipv4(10, 1, 1, 1));
  const Mac known = *Mac::parse("00:50:8b:e0:3a:a7");
  dhcp.add_binding(known, {Ipv4(10, 255, 255, 245), "compute-0-0", Ipv4(10, 1, 1, 1)});

  const auto lease = dhcp.discover(known);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->hostname, "compute-0-0");

  const Mac unknown = *Mac::parse("00:50:8b:e0:44:5e");
  EXPECT_FALSE(dhcp.discover(unknown).has_value());
  EXPECT_EQ(dhcp.unanswered_count(), 1u);
  ASSERT_EQ(syslog.log().size(), 2u);
  EXPECT_NE(syslog.log().back().text.find("DHCPDISCOVER"), std::string::npos);
  EXPECT_NE(syslog.log().back().text.find("00:50:8b:e0:44:5e"), std::string::npos);
}

TEST(DhcpTest, ConfigureReplacesBindings) {
  Simulator sim;
  SyslogBus syslog;
  DhcpServer dhcp(sim, syslog, "frontend-0", Ipv4(10, 1, 1, 1));
  const Mac mac = *Mac::parse("00:00:00:00:00:01");
  dhcp.add_binding(mac, {Ipv4(10, 0, 0, 1), "a", Ipv4(10, 1, 1, 1)});
  dhcp.configure({});
  EXPECT_FALSE(dhcp.knows(mac));
}

TEST(SyslogTest, ListenersReceiveAndUnsubscribe) {
  SyslogBus bus;
  int count = 0;
  const auto id = bus.subscribe([&](const SyslogMessage&) { ++count; });
  bus.publish({0.0, "test", "h", "one"});
  bus.unsubscribe(id);
  bus.publish({0.0, "test", "h", "two"});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.total_published(), 2u);
}

TEST(SyslogTest, ReentrantSubscriptionSafe) {
  SyslogBus bus;
  int nested = 0;
  bus.subscribe([&](const SyslogMessage& m) {
    if (m.text == "outer") bus.subscribe([&](const SyslogMessage&) { ++nested; });
  });
  bus.publish({0.0, "t", "h", "outer"});
  bus.publish({0.0, "t", "h", "inner"});
  EXPECT_EQ(nested, 1);
}

TEST(SimulatorTest, CancelledIdsReclaimedWhenEntriesPop) {
  Simulator sim;
  // A cancel-heavy workload (every retry timer that gets superseded) must
  // not grow the lazy-deletion set forever.
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(sim.schedule(1.0 + i, [] {}));
  for (int i = 0; i < 100; i += 2) sim.cancel(ids[i]);
  EXPECT_EQ(sim.cancelled_backlog(), 50u);
  sim.run_until(51.0);  // pops entries at t=1..51: 26 of them were cancelled
  EXPECT_EQ(sim.cancelled_backlog(), 24u);
  sim.run();
  EXPECT_EQ(sim.cancelled_backlog(), 0u);
  EXPECT_EQ(sim.events_fired(), 50u);
}

TEST(SimulatorTest, BacklogClearsWhenQueueDrainsEvenForUnpoppedIds) {
  Simulator sim;
  // Cancel ids scheduled *after* everything else has fired: their queue
  // entries pop during the same run, and a drained queue clears the set.
  for (int i = 0; i < 10; ++i) sim.cancel(sim.schedule(1.0, [] {}));
  EXPECT_EQ(sim.cancelled_backlog(), 10u);
  sim.run();
  EXPECT_EQ(sim.cancelled_backlog(), 0u);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(HttpTest, CrashKillsFlowsNotifiesClientsAndRefusesService) {
  Simulator sim;
  HttpServer server(sim, "frontend-0", 10.0);
  double aborted_at_bytes = -1.0;
  bool completed = false;
  server.serve(
      100.0, 0.0, [&] { completed = true; },
      [&](double delivered) { aborted_at_bytes = delivered; });
  sim.schedule(2.0, [&] { server.crash(); });
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_NEAR(aborted_at_bytes, 20.0, 1e-6);
  EXPECT_FALSE(server.is_up());
  EXPECT_EQ(server.stats().crashes, 1u);
  EXPECT_EQ(server.stats().flows_killed, 1u);
  // Only the undelivered remainder is refunded: the 20 bytes that made it
  // over the wire stay counted.
  EXPECT_NEAR(server.stats().bytes_served, 20.0, 1e-6);
  EXPECT_THROW(server.serve(10.0, 0.0, nullptr), UnavailableError);
  server.restart();
  EXPECT_TRUE(server.is_up());
  server.serve(10.0, 0.0, [&] { completed = true; });
  sim.run();
  EXPECT_TRUE(completed);
}

TEST(HttpTest, KillOneFlowResetsOldestOnly) {
  Simulator sim;
  HttpServer server(sim, "frontend-0", 10.0);
  double first_delivered = -1.0;
  bool second_done = false;
  server.serve(1000.0, 0.0, nullptr, [&](double delivered) { first_delivered = delivered; });
  sim.schedule(1.0, [&] { server.serve(20.0, 0.0, [&] { second_done = true; }); });
  sim.schedule(3.0, [&] { EXPECT_TRUE(server.kill_one_flow()); });
  sim.run();
  EXPECT_GT(first_delivered, 0.0);  // the oldest flow took the reset
  EXPECT_TRUE(second_done);         // the younger one finished untouched
  EXPECT_EQ(server.stats().flows_killed, 1u);
  EXPECT_FALSE(server.kill_one_flow());  // idle: nothing to kill
}

TEST(HttpTest, GroupRoutesAroundDownReplicas) {
  Simulator sim;
  HttpServerGroup group(sim, 7.5 * kMB, 3);
  group.crash_replica(1);
  EXPECT_EQ(group.up_count(), 2u);
  for (int i = 0; i < 4; ++i) group.serve(100.0 * kMB, 1.0 * kMB, nullptr);
  EXPECT_EQ(group.server(1).active_downloads(), 0u);
  EXPECT_EQ(group.server(0).active_downloads(), 2u);
  EXPECT_EQ(group.server(2).active_downloads(), 2u);
  group.restart_replica(1);
  group.serve(100.0 * kMB, 1.0 * kMB, nullptr);
  EXPECT_EQ(group.server(1).active_downloads(), 1u);  // least-connections
}

TEST(HttpTest, GroupReturnsNullTicketWhenAllReplicasDown) {
  Simulator sim;
  HttpServerGroup group(sim, 7.5 * kMB, 2);
  group.crash_replica(0);
  group.crash_replica(1);
  bool completed = false;
  const auto ticket = group.serve(10.0, 0.0, [&] { completed = true; });
  EXPECT_EQ(ticket.server, nullptr);
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(group.active_downloads(), 0u);
}

TEST(SimulatorTest, CancelHeavyBacklogCompactsEagerly) {
  // Past the floor, dead entries exceeding half the heap trigger one O(live)
  // compaction instead of lingering until the queue drains (a 100k-node
  // swarm cancels retry timers by the thousands without popping them).
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 400; ++i) ids.push_back(sim.schedule(1000.0 + i, [] {}));
  for (int i = 0; i < 300; ++i) sim.cancel(ids[i]);
  // The trigger fires at dead * 2 > heap size (201 of 400); the stragglers
  // cancelled after that stay lazy until the next trigger or pop.
  EXPECT_GT(sim.compactions(), 0u);
  EXPECT_LT(sim.cancelled_backlog(), 150u);
  EXPECT_EQ(sim.pending_events(), 100u);
  sim.run();
  EXPECT_EQ(sim.events_fired(), 100u);
}

TEST(SimulatorTest, SmallCancelBurstsStayLazy) {
  // Below the floor no compaction happens: micro-queues keep the original
  // lazy-deletion behaviour (and its tests) byte for byte.
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 60; ++i) ids.push_back(sim.schedule(10.0, [] {}));
  for (const EventId id : ids) sim.cancel(id);
  EXPECT_EQ(sim.compactions(), 0u);
  EXPECT_EQ(sim.cancelled_backlog(), 60u);
  sim.run();
  EXPECT_EQ(sim.cancelled_backlog(), 0u);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(FlowTest, ChannelStatsCountJoinsRebalancesAndPeak) {
  Simulator sim;
  FairShareChannel channel(sim, 7.0 * kMB);
  EXPECT_EQ(channel.stats().flow_joins, 0u);
  channel.start(7.0 * kMB, 0.0, [] {});
  channel.start(7.0 * kMB, 0.0, [] {});
  const FlowId third = channel.start(7.0 * kMB, 0.0, [] {});
  EXPECT_EQ(channel.stats().flow_joins, 3u);
  EXPECT_EQ(channel.stats().peak_active, 3u);
  EXPECT_GE(channel.stats().rebalances, 3u);
  channel.abort(third);
  EXPECT_EQ(channel.stats().peak_active, 3u);  // high-water, not current
  channel.reset_stats();
  EXPECT_EQ(channel.stats().flow_joins, 0u);
  EXPECT_EQ(channel.stats().rebalances, 0u);
  EXPECT_EQ(channel.stats().peak_active, 2u);  // restarts from live membership
  sim.run();
}

TEST(FlowTest, DeliveredAndRemainingAreConstReads) {
  // The read path must not mutate the channel: two queries at the same
  // instant see the same value, and completions stay exact afterwards.
  Simulator sim;
  FairShareChannel channel(sim, 7.0 * kMB);
  bool done = false;
  const FlowId flow = channel.start(7.0 * kMB, 0.0, [&] { done = true; });
  sim.run_until(0.5);
  const FairShareChannel& read_only = channel;
  const double first = read_only.delivered(flow);
  EXPECT_NEAR(first, 3.5 * kMB, 1.0);
  EXPECT_NEAR(read_only.remaining(flow), 3.5 * kMB, 1.0);
  EXPECT_EQ(read_only.delivered(flow), first);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(PduTest, PowerCycleRunsAttachedAction) {
  PowerDistributionUnit pdu;
  int cycles = 0;
  pdu.attach("compute-0-0", [&] { ++cycles; });
  pdu.power_cycle("compute-0-0");
  EXPECT_EQ(cycles, 1);
  EXPECT_EQ(pdu.cycles_executed(), 1u);
  EXPECT_THROW(pdu.power_cycle("ghost"), LookupError);
  pdu.detach("compute-0-0");
  EXPECT_THROW(pdu.power_cycle("compute-0-0"), LookupError);
}

}  // namespace
}  // namespace rocks::netsim
