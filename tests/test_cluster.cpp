// Integration-level tests of the cluster facade: insert-ethers node
// integration, the installer state machine, reinstallation semantics, eKV,
// and the update workflow.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  static ClusterConfig small_config() {
    ClusterConfig config;
    config.synth.filler_packages = 50;  // keep tests fast; benches use full size
    return config;
  }
};

TEST_F(ClusterTest, IntegrationNamesNodesSequentially) {
  Cluster cluster(small_config());
  for (int i = 0; i < 4; ++i) cluster.add_node();
  cluster.integrate_all();

  for (int i = 0; i < 4; ++i) {
    Node* node = cluster.node(strings::cat("compute-0-", i));
    ASSERT_NE(node, nullptr) << "compute-0-" << i;
    EXPECT_TRUE(node->is_running());
    EXPECT_EQ(node->install_count(), 1);
  }
  EXPECT_EQ(cluster.insert_ethers().nodes_inserted(), 4);

  // The database has frontend + 4 compute rows.
  const auto rows = cluster.frontend().db().execute("SELECT name FROM nodes ORDER BY id");
  EXPECT_EQ(rows.row_count(), 5u);
  EXPECT_EQ(rows.rows[0][0].as_text(), "frontend-0");
  EXPECT_EQ(rows.rows[1][0].as_text(), "compute-0-0");
}

TEST_F(ClusterTest, IpAddressesAllocatedDownward) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.add_node();
  cluster.integrate_all();
  EXPECT_EQ(cluster.node("compute-0-0")->ip().to_string(), "10.255.255.254");
  EXPECT_EQ(cluster.node("compute-0-1")->ip().to_string(), "10.255.255.253");
}

TEST_F(ClusterTest, GeneratedConfigsCoverNewNodes) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  auto& fe = cluster.frontend();
  EXPECT_NE(fe.fs().read_file("/etc/hosts").find("compute-0-0"), std::string::npos);
  EXPECT_NE(fe.fs().read_file("/etc/dhcpd.conf").find("compute-0-0"), std::string::npos);
  EXPECT_NE(fe.fs().read_file("/var/spool/pbs/server_priv/nodes").find("compute-0-0 np=2"),
            std::string::npos);
}

TEST_F(ClusterTest, SingleNodeReinstallMatchesTableICalibration) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");
  node->shoot();
  cluster.run_until_stable();
  // 60 boot + 10 dhcp/ks + 40 format + 223 download + 75 post + 120 driver
  // rebuild + 90 final boot = 618 s = 10.3 minutes (Table I, 1 node).
  EXPECT_NEAR(node->last_install_duration(), 618.0, 5.0);
  EXPECT_EQ(node->install_count(), 2);
}

TEST_F(ClusterTest, NodesAreConsistentAfterInstall) {
  Cluster cluster(small_config());
  for (int i = 0; i < 3; ++i) cluster.add_node();
  cluster.integrate_all();
  EXPECT_TRUE(cluster.consistent());
  // Drift one node; consistency is lost; a reinstall restores it.
  cluster.node("compute-0-1")->install_rogue_package([] {
    rpm::Package pkg;
    pkg.name = "hand-built-tool";
    pkg.evr = rpm::Evr::parse("0.1-1");
    pkg.files = {"/usr/local/bin/tool"};
    return pkg;
  }());
  EXPECT_FALSE(cluster.consistent());
  cluster.shoot_node("compute-0-1");
  cluster.run_until_stable();
  EXPECT_TRUE(cluster.consistent());
}

TEST_F(ClusterTest, PostScriptsMaterializedAndLocalized) {
  Cluster cluster(small_config());
  for (int i = 0; i < 2; ++i) cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-1");
  // The base module's post landed, localized with this node's identity.
  ASSERT_TRUE(node->fs().is_directory("/etc/rc.d/rocks-post.d"));
  bool saw_hostname = false;
  bool saw_frontend_ip = false;
  node->fs().walk("/etc/rc.d/rocks-post.d", [&](const std::string& path, const vfs::Stat& st) {
    if (st.type != vfs::NodeType::kFile) return;
    const std::string& body = node->fs().read_file(path);
    if (body.find("compute-0-1") != std::string::npos) saw_hostname = true;
    if (body.find("10.1.1.1") != std::string::npos) saw_frontend_ip = true;
  });
  EXPECT_TRUE(saw_hostname);
  EXPECT_TRUE(saw_frontend_ip);
  // Localization makes these files intentionally node-specific.
  EXPECT_NE(node->fs().file_hash("/etc/rc.d/rocks-post.d/01-base"),
            cluster.node("compute-0-0")->fs().file_hash("/etc/rc.d/rocks-post.d/01-base"));
}

TEST_F(ClusterTest, NonRootPartitionSurvivesReinstall) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");
  node->fs().write_file("/state/partition1/experiment.dat", "precious results");
  const std::string etc_marker = "/etc/rogue.conf";
  node->corrupt_file(etc_marker, "drift");
  cluster.shoot_node("compute-0-0");
  cluster.run_until_stable();
  EXPECT_EQ(node->fs().read_file("/state/partition1/experiment.dat"), "precious results");
  EXPECT_FALSE(node->fs().exists(etc_marker)) << "root partition must be rebuilt";
}

TEST_F(ClusterTest, HardPowerCycleForcesReinstall) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");
  cluster.pdu().power_cycle("compute-0-0");
  EXPECT_FALSE(node->is_running());
  cluster.run_until_stable();
  EXPECT_EQ(node->install_count(), 2);
}

TEST_F(ClusterTest, PowerOffMidInstallThenRecover) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");
  node->shoot();
  // Yank power in the middle of the download phase.
  cluster.sim().run_until(cluster.sim().now() + 200.0);
  EXPECT_EQ(node->state(), NodeState::kInstalling);
  node->power_off();
  EXPECT_EQ(node->state(), NodeState::kOff);
  EXPECT_EQ(cluster.frontend().http().active_downloads(), 0u) << "download must be aborted";
  node->power_on();
  cluster.run_until_stable();
  EXPECT_TRUE(node->is_running());
  EXPECT_EQ(node->install_count(), 2);
}

TEST_F(ClusterTest, ShootRequiresRunningNode) {
  Cluster cluster(small_config());
  Node& node = cluster.add_node();
  EXPECT_THROW(node.shoot(), StateError);
  EXPECT_THROW(cluster.shoot_node("ghost"), LookupError);
}

TEST_F(ClusterTest, EkvShowsInstallProgress) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");
  const auto& progress = node->ekv().progress();
  EXPECT_GT(progress.total_packages, 50u);
  EXPECT_EQ(progress.completed_packages, progress.total_packages);
  const std::string screen = node->ekv().screen();
  EXPECT_NE(screen.find("eKV on"), std::string::npos);
  EXPECT_NE(screen.find("Package Installation"), std::string::npos);
  EXPECT_NE(screen.find("reinstall #1 complete"), std::string::npos);
}

TEST_F(ClusterTest, EkvAcceptsInteractiveInput) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");
  std::vector<std::string> seen;
  node->ekv().attach([&](const EkvLine& line) { seen.push_back(line.text); });
  node->ekv().send_input(cluster.sim().now(), "F12");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "<< F12");
  EXPECT_EQ(node->ekv().inputs_received(), 1u);
  EXPECT_NE(node->ekv().screen().find("<< F12"), std::string::npos);
}

TEST_F(ClusterTest, ShootNodeCapturesEkvScreen) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  cluster.shoot_node("compute-0-0", /*watch_ekv=*/true);
  cluster.run_until_stable();
  ASSERT_EQ(cluster.ekv_captures().size(), 1u);
  EXPECT_NE(cluster.ekv_captures()[0].find("reinstall #2 complete"), std::string::npos);
}

TEST_F(ClusterTest, UpdateCycleRefreshesNodes) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");

  // Build an errata repo containing a newer openssl.
  const rpm::Package* base_ssl = cluster.distro().repo.newest("openssl");
  ASSERT_NE(base_ssl, nullptr);
  rpm::Package update = *base_ssl;
  update.evr.release += ".6";
  update.origin = rpm::Origin::kUpdate;
  update.security_fix = true;
  rpm::Repository errata("errata");
  errata.add(update);

  const std::string old_version = node->rpmdb().find("openssl")->evr.to_string();
  cluster.frontend().apply_updates(errata);
  cluster.shoot_node("compute-0-0");
  cluster.run_until_stable();
  EXPECT_EQ(node->rpmdb().find("openssl")->evr.to_string(), update.evr.to_string());
  EXPECT_NE(node->rpmdb().find("openssl")->evr.to_string(), old_version);
}

TEST_F(ClusterTest, SecondRackGetsOwnNames) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  cluster.insert_ethers().set_rack(1);
  cluster.add_node();
  cluster.integrate_all();
  EXPECT_NE(cluster.node("compute-1-0"), nullptr);
  EXPECT_EQ(cluster.node("compute-1-0")->ip().to_string(), "10.255.255.253");
}

TEST_F(ClusterTest, HeterogeneousAppliancesFromOneGraph) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();  // compute-0-0
  cluster.insert_ethers().set_membership(7, "nfs");
  cluster.add_node();
  cluster.integrate_all();  // nfs-0-0

  Node* nfs = cluster.node("nfs-0-0");
  ASSERT_NE(nfs, nullptr);
  EXPECT_TRUE(nfs->is_running());
  // The NFS appliance installs fewer packages than a compute node (no MPI,
  // no compilers) and carries the NFS server bits.
  Node* compute = cluster.node("compute-0-0");
  EXPECT_LT(nfs->rpmdb().package_count(), compute->rpmdb().package_count());
  EXPECT_TRUE(nfs->rpmdb().installed("nfs-utils"));
  EXPECT_FALSE(nfs->rpmdb().installed("mpich"));
  // And without a Myrinet driver rebuild it reinstalls faster.
  EXPECT_LT(nfs->last_install_duration(), compute->last_install_duration());
}

TEST_F(ClusterTest, BulkRegistrationRestartsEachServiceOnce) {
  // The change bus coalesces a burst: registering 100 nodes through
  // register_batch commits 100 rows, then flushes once — each config
  // service restarts exactly once, not 100 times (DESIGN.md §10).
  Cluster cluster(small_config());
  auto& fe = cluster.frontend();
  const auto hosts_before = fe.services().restarts("hosts");
  const auto dhcpd_before = fe.services().restarts("dhcpd");
  const auto pbs_before = fe.services().restarts("pbs");

  std::vector<Mac> macs;
  for (int i = 0; i < 100; ++i) macs.push_back(Mac(0x00508B000000ULL + i));
  EXPECT_EQ(cluster.insert_ethers().register_batch(macs), 100);

  EXPECT_EQ(fe.services().restarts("hosts"), hosts_before + 1);
  EXPECT_EQ(fe.services().restarts("dhcpd"), dhcpd_before + 1);
  EXPECT_EQ(fe.services().restarts("pbs"), pbs_before + 1);
  // And the one flush covered the whole burst.
  const std::string hosts = fe.fs().read_file("/etc/hosts");
  EXPECT_NE(hosts.find("compute-0-0"), std::string::npos);
  EXPECT_NE(hosts.find("compute-0-99"), std::string::npos);
  EXPECT_NE(fe.fs().read_file("/var/spool/pbs/server_priv/nodes").find("compute-0-99 np=2"),
            std::string::npos);

  // Re-registering the same MACs inserts nothing and restarts nothing.
  EXPECT_EQ(cluster.insert_ethers().register_batch(macs), 0);
  EXPECT_EQ(fe.services().restarts("hosts"), hosts_before + 1);
  EXPECT_EQ(fe.services().restarts("dhcpd"), dhcpd_before + 1);
}

TEST_F(ClusterTest, UserAccountsSyncOverNis) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  auto& fe = cluster.frontend();
  const auto before = fe.services().restarts("nis");

  fe.add_user("bruno", 501, "/bin/tcsh");
  // The NIS map was regenerated and the service restarted exactly once.
  EXPECT_EQ(fe.services().restarts("nis"), before + 1);
  const std::string map = fe.nis_passwd_map();
  EXPECT_NE(map.find("bruno:x:501:501::/export/home/bruno:/bin/tcsh"), std::string::npos);
  // The home directory exists on the NFS-exported filesystem.
  EXPECT_TRUE(fe.fs().is_directory("/export/home/bruno"));
  // Adding a user does not churn unrelated services.
  const auto pbs_before = fe.services().restarts("pbs");
  fe.add_user("mjk", 502);
  EXPECT_EQ(fe.services().restarts("pbs"), pbs_before);
}

TEST_F(ClusterTest, MultiArchClusterFromOneGraph) {
  // Section 6.1: "one XML graph file supports the dynamic kickstart file
  // generation for three processor types (IA-32, Athlon and IA-64)".
  ClusterConfig config = small_config();
  config.synth.arches = {"i386", "ia64"};
  Cluster cluster(std::move(config));
  cluster.add_node("i386");
  cluster.integrate_all();
  cluster.insert_ethers().set_arch("ia64");
  cluster.add_node("ia64");
  cluster.integrate_all();

  Node* ia32 = cluster.node("compute-0-0");
  Node* ia64 = cluster.node("compute-0-1");
  ASSERT_NE(ia64, nullptr);
  EXPECT_TRUE(ia64->is_running());

  // Same modules, per-arch binaries, per-arch bootloader.
  EXPECT_TRUE(ia32->rpmdb().installed("grub"));
  EXPECT_FALSE(ia32->rpmdb().installed("elilo"));
  EXPECT_TRUE(ia64->rpmdb().installed("elilo"));
  EXPECT_FALSE(ia64->rpmdb().installed("grub"));
  EXPECT_EQ(ia32->rpmdb().find("glibc")->arch, "i386");
  EXPECT_EQ(ia64->rpmdb().find("glibc")->arch, "ia64");
  // noarch packages are shared verbatim.
  EXPECT_EQ(ia64->rpmdb().find("rocks-ekv")->arch, "noarch");
  // Both got the full compute stack.
  EXPECT_TRUE(ia64->rpmdb().installed("mpich"));
  EXPECT_TRUE(ia64->rpmdb().installed("gm-driver"));
}

TEST_F(ClusterTest, ReinstallAllReturnsMakespan) {
  Cluster cluster(small_config());
  for (int i = 0; i < 2; ++i) cluster.add_node();
  cluster.integrate_all();
  const double makespan = cluster.reinstall_all();
  // Two nodes at full speed: same as one (no contention at 7.5 MB/s).
  EXPECT_NEAR(makespan, 618.0, 5.0);
  EXPECT_TRUE(cluster.consistent());
}

// --- failure injection: power cut at arbitrary points of the install ------

class PowerCutSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerCutSweep, NodeRecoversFromPowerCutAtAnyPhase) {
  ClusterConfig config;
  config.synth.filler_packages = 50;
  Cluster cluster(std::move(config));
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");

  node->shoot();
  // Cut power `GetParam()` seconds into the reinstall: during installer
  // boot (20), dhcp/kickstart (65), disk format (100), download (200/400),
  // post-config (520), final boot (590).
  cluster.sim().run_until(cluster.sim().now() + GetParam());
  node->power_off();
  EXPECT_EQ(node->state(), NodeState::kOff);
  EXPECT_EQ(cluster.frontend().http().active_downloads(), 0u);

  // Power restored: the node reinstalls from scratch and converges.
  node->power_on();
  cluster.run_until_stable();
  EXPECT_TRUE(node->is_running());
  EXPECT_EQ(node->install_count(), 2);
  EXPECT_TRUE(cluster.consistent());
}

INSTANTIATE_TEST_SUITE_P(CutPoints, PowerCutSweep,
                         ::testing::Values(20.0, 65.0, 100.0, 200.0, 400.0, 520.0, 590.0));

TEST_F(ClusterTest, RepeatedHardCyclesConverge) {
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");
  // Flaky power: three rapid-fire hard cycles mid-install.
  node->shoot();
  for (int i = 0; i < 3; ++i) {
    cluster.sim().run_until(cluster.sim().now() + 150.0);
    node->hard_power_cycle();
  }
  cluster.run_until_stable();
  EXPECT_TRUE(node->is_running());
  // Only the final attempt completed.
  EXPECT_EQ(node->install_count(), 2);
}

TEST_F(ClusterTest, HardPowerCycleMidDownloadFreesServerCapacity) {
  // A power event racing an in-flight download: the HTTP flow must be
  // aborted server-side immediately (no ghost flow holding fair-share
  // bandwidth), and the fresh install must converge.
  Cluster cluster(small_config());
  for (int i = 0; i < 2; ++i) cluster.add_node();
  cluster.integrate_all();
  Node* victim = cluster.node("compute-0-0");
  Node* bystander = cluster.node("compute-0-1");

  for (auto* node : cluster.nodes()) node->shoot();
  cluster.sim().run_until(cluster.sim().now() + 200.0);
  ASSERT_EQ(victim->state(), NodeState::kInstalling);
  ASSERT_EQ(cluster.frontend().http().active_downloads(), 2u);
  victim->hard_power_cycle();
  // The old flow is gone the instant power drops; only the bystander's
  // remains (the victim re-enters install and re-requests later).
  EXPECT_EQ(cluster.frontend().http().active_downloads(), 1u);
  cluster.run_until_stable();
  EXPECT_TRUE(victim->is_running());
  EXPECT_TRUE(bystander->is_running());
  EXPECT_EQ(victim->install_count(), 2);
  EXPECT_TRUE(cluster.consistent());
}

TEST_F(ClusterTest, RapidPowerEventsLeaveNoStaleCallbacks) {
  // Stale epoch callbacks from interrupted installs must all no-op:
  // on_running fires exactly once, for the attempt that actually finished.
  Cluster cluster(small_config());
  cluster.add_node();
  cluster.integrate_all();
  Node* node = cluster.node("compute-0-0");
  int running_events = 0;
  node->on_running([&] { ++running_events; });

  node->shoot();
  for (const double cut : {30.0, 80.0, 150.0, 250.0}) {
    cluster.sim().run_until(cluster.sim().now() + cut);
    node->power_off();
    EXPECT_EQ(cluster.frontend().http().active_downloads(), 0u);
    node->power_on();
  }
  cluster.run_until_stable();
  EXPECT_TRUE(node->is_running());
  EXPECT_EQ(running_events, 1);
  EXPECT_EQ(node->install_count(), 2);  // only the last attempt completed
}

TEST_F(ClusterTest, OneDeadNodeDoesNotBlockClusterReinstall) {
  Cluster cluster(small_config());
  for (int i = 0; i < 3; ++i) cluster.add_node();
  cluster.integrate_all();
  cluster.node("compute-0-1")->inject_hardware_fault();
  // reinstall_all shoots only running nodes; the dead one is skipped.
  const double makespan = cluster.reinstall_all();
  EXPECT_GT(makespan, 0.0);
  EXPECT_EQ(cluster.node("compute-0-0")->install_count(), 2);
  EXPECT_EQ(cluster.node("compute-0-2")->install_count(), 2);
  EXPECT_EQ(cluster.node("compute-0-1")->install_count(), 1);
  EXPECT_FALSE(cluster.node("compute-0-1")->is_running());
}

TEST_F(ClusterTest, ServerCapacityUpgradeMidPulse) {
  // The GigE upgrade story, live: halfway through a contended 16-node
  // pulse the server NIC is swapped for something 4x faster.
  ClusterConfig config = small_config();
  config.frontend.http_capacity = 7.0 * 1024 * 1024;
  Cluster cluster(std::move(config));
  for (int i = 0; i < 16; ++i) cluster.add_node();
  cluster.integrate_all();

  const double start = cluster.sim().now();
  for (auto* node : cluster.nodes()) node->shoot();
  cluster.sim().run_until(start + 300.0);
  cluster.frontend().http().server(0).set_capacity(28.0 * 1024 * 1024);
  cluster.run_until_stable();
  const double makespan = cluster.sim().now() - start;
  // Faster than the all-slow case (~15.1 min at 7 MB/s) and slower than
  // the uncontended single-node time.
  EXPECT_LT(makespan, 900.0);
  EXPECT_GT(makespan, 618.0 - 1.0);
  EXPECT_TRUE(cluster.consistent());
}

}  // namespace
}  // namespace rocks::cluster
