// Tests for the three baselines the paper argues against: disk cloning
// (Section 3.1), cfengine-style parity checking (Sections 1-2), and hand
// administration (Section 3.2).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/cfengine.hpp"
#include "baselines/disk_cloning.hpp"
#include "baselines/hand_admin.hpp"
#include "cluster/cluster.hpp"

namespace rocks::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster::ClusterConfig config;
    config.synth.filler_packages = 50;
    cluster_ = std::make_unique<cluster::Cluster>(config);
    for (int i = 0; i < 2; ++i) cluster_->add_node();
    cluster_->integrate_all();
    model_ = cluster_->node("compute-0-0");
    target_ = cluster_->node("compute-0-1");
  }

  std::unique_ptr<cluster::Cluster> cluster_;
  cluster::Node* model_ = nullptr;
  cluster::Node* target_ = nullptr;
};

TEST_F(BaselinesTest, CloneReplicatesHomogeneousHardware) {
  // Make the target drift first.
  target_->corrupt_file("/etc/drift.conf", "junk");
  DiskCloner cloner;
  const CloneImage image = cloner.capture(*model_);
  EXPECT_GT(image.bytes, 1024u * 1024u);
  const CloneReport report = cloner.apply(image, *target_);
  ASSERT_TRUE(report.applied) << report.failure;
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_EQ(target_->software_fingerprint(), model_->software_fingerprint());
  EXPECT_FALSE(target_->fs().exists("/etc/drift.conf"));
}

TEST_F(BaselinesTest, CloneCopiesModelIdentityVerbatim) {
  // The pitfall: a bit image carries the model's per-node configuration.
  model_->corrupt_file("/etc/hostname-file", model_->hostname());
  DiskCloner cloner;
  cloner.apply(cloner.capture(*model_), *target_);
  // The clone now believes it is compute-0-0.
  EXPECT_EQ(target_->fs().read_file("/etc/hostname-file"), "compute-0-0");
}

TEST_F(BaselinesTest, CloneRefusesForeignArchitecture) {
  cluster::Node& ia64 = cluster_->add_node("ia64");
  DiskCloner cloner;
  const CloneReport report = cloner.apply(cloner.capture(*model_), ia64);
  EXPECT_FALSE(report.applied);
  EXPECT_NE(report.failure.find("ia64"), std::string::npos);
}

TEST_F(BaselinesTest, CloneSparesStatePartition) {
  target_->fs().write_file("/state/partition1/data", "keep");
  DiskCloner cloner;
  cloner.apply(cloner.capture(*model_), *target_);
  EXPECT_EQ(target_->fs().read_file("/state/partition1/data"), "keep");
}

TEST_F(BaselinesTest, CfengineAuditFindsManagedDrift) {
  // Trash a package-owned file; policy (the gold image) manages it.
  target_->corrupt_file("/usr/bin/grep", "wrong bytes");
  CfengineAgent agent;
  const ParityReport report = agent.audit(*target_, *model_);
  EXPECT_GT(report.files_examined, 100u);
  EXPECT_GE(report.drifted, 1u);
  EXPECT_EQ(report.repaired, 0u);  // audit only
  EXPECT_GT(report.seconds, 0.0);
}

TEST_F(BaselinesTest, CfengineConvergeRepairsManagedFiles) {
  // Overwrite a file both nodes have (owned by a package).
  const std::string victim = "/usr/bin/bash";
  ASSERT_TRUE(model_->fs().is_file(victim));
  target_->corrupt_file(victim, "trashed binary");
  CfengineAgent agent;
  const ParityReport report = agent.converge(*target_, *model_);
  EXPECT_GE(report.repaired, 1u);
  EXPECT_EQ(target_->fs().file_hash(victim), model_->fs().file_hash(victim));
}

TEST_F(BaselinesTest, CfengineCannotSeeUnmanagedDrift) {
  // A user hand-installs software: no policy rule covers it.
  target_->corrupt_file("/usr/local/bin/rogue", "hand-built");
  CfengineAgent agent;
  const ParityReport report = agent.converge(*target_, *model_);
  EXPECT_GE(report.unmanaged_extra, 1u);
  EXPECT_TRUE(target_->fs().exists("/usr/local/bin/rogue"))
      << "cfengine only converges what policy names";
  // Reinstall, the Rocks answer, removes it.
  cluster_->shoot_node("compute-0-1");
  cluster_->run_until_stable();
  EXPECT_FALSE(target_->fs().exists("/usr/local/bin/rogue"));
}

TEST_F(BaselinesTest, CfengineCleanNodesHaveNoDrift) {
  CfengineAgent agent;
  const ParityReport report = agent.audit(*target_, *model_);
  EXPECT_EQ(report.drifted, 0u);
  EXPECT_EQ(report.unmanaged_extra, 0u);
}

TEST_F(BaselinesTest, HandAdminInjectsSilentDrift) {
  // Push many changes; with error injection some nodes end up different.
  HandAdminOptions options;
  options.seed = 7;
  options.typo_probability = 0.2;
  options.skip_probability = 0.2;
  HandAdministrator admin(options);
  auto nodes = cluster_->nodes();
  int drift_events = 0;
  for (int change = 0; change < 20; ++change) {
    const auto report = admin.push_change(nodes, "/etc/tuning.conf",
                                          "vm.overcommit=" + std::to_string(change));
    drift_events += report.typos + report.skipped;
    EXPECT_EQ(report.attempted, 2);
  }
  EXPECT_GT(drift_events, 0);
  // The two nodes disagree on at least one /etc file now.
  EXPECT_NE(model_->fs().file_hash("/etc/tuning.conf"),
            target_->fs().file_hash("/etc/tuning.conf"));
}

TEST_F(BaselinesTest, HandAdminAccountsOperatorTime) {
  HandAdministrator admin;
  const auto report = admin.push_change(cluster_->nodes(), "/etc/x", "y");
  EXPECT_DOUBLE_EQ(report.operator_seconds, 2 * 45.0);
}

}  // namespace
}  // namespace rocks::baselines
