// The durable configuration store (DESIGN.md §11): CRC/WAL/snapshot codecs,
// recovery round trips, corruption handling, group commit, the crash-point
// sweep (byte-identical recovery from a simulated power cut at every
// registered point), atomic config-file publication, and insert-ethers
// registration crash safety.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "services/manager.hpp"
#include "sqldb/engine.hpp"
#include "sqldb/snapshot.hpp"
#include "sqldb/wal.hpp"
#include "support/crashpoint.hpp"
#include "support/crc.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/path.hpp"

namespace rocks {
namespace {

using sqldb::Database;
using sqldb::RecoveryReport;
using sqldb::WalOp;
using sqldb::WalRecord;
using support::CrashError;
using support::CrashPoints;

constexpr const char* kDir = "/state/db";

class DurabilityTest : public ::testing::Test {
 protected:
  void TearDown() override { CrashPoints::instance().disarm_all(); }
};

/// Executes `statements` against a fresh in-RAM database and dumps it — the
/// ground truth a recovered store must match byte-for-byte (dump_state
/// covers schema, indexes, AUTO_INCREMENT cursors, rows, and journal
/// channel revisions).
std::string replay_dump(const std::vector<std::string>& statements) {
  Database db;
  for (const std::string& statement : statements) db.execute(statement);
  return db.dump_state();
}

// --- CRC32 -------------------------------------------------------------------

TEST_F(DurabilityTest, Crc32MatchesKnownVectorsAndChains) {
  EXPECT_EQ(support::crc32(""), 0u);
  EXPECT_EQ(support::crc32("123456789"), 0xCBF43926u);  // the standard check value
  const std::string data = "the quick brown fox";
  EXPECT_EQ(support::crc32(data.substr(10), support::crc32(data.substr(0, 10))),
            support::crc32(data));
  EXPECT_NE(support::crc32("a"), support::crc32("b"));
}

// --- crash points ------------------------------------------------------------

TEST_F(DurabilityTest, CrashPointsArmCountdownAndSelfDisarm) {
  auto& points = CrashPoints::instance();
  support::crash_point("test.point");  // unarmed: registers, does nothing
  const auto names = points.registered();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.point"), names.end());

  points.arm("test.point", 3);
  support::crash_point("test.point");
  support::crash_point("test.point");
  EXPECT_THROW(support::crash_point("test.point"), CrashError);
  // One crash per arm: the point disarmed itself.
  support::crash_point("test.point");
  EXPECT_GE(points.hits("test.point"), 5u);
}

// --- WAL codec ---------------------------------------------------------------

TEST_F(DurabilityTest, WalRecordsRoundTripThroughEveryOp) {
  std::vector<WalRecord> in(4);
  in[0].lsn = 1;
  in[0].op = WalOp::kCreateTable;
  in[0].commit = true;
  in[0].table = "nodes";
  in[0].schema = {{"id", sqldb::Type::kInt, true, true}, {"name", sqldb::Type::kText}};
  in[1].lsn = 2;
  in[1].op = WalOp::kInsert;
  in[1].table = "nodes";
  in[1].row = {sqldb::Value(std::int64_t{1}), sqldb::Value("compute-0-0")};
  in[2].lsn = 3;
  in[2].op = WalOp::kUpdate;
  in[2].commit = true;
  in[2].table = "nodes";
  in[2].row_index = 0;
  in[2].cells = {{1, sqldb::Value("renamed")}, {0, sqldb::Value::null()}};
  in[3].lsn = 4;
  in[3].op = WalOp::kDelete;
  in[3].commit = true;
  in[3].table = "nodes";
  in[3].row_indexes = {0, 2, 5};

  std::string bytes;
  for (const WalRecord& record : in) bytes += sqldb::encode_wal_record(record);
  const auto out = sqldb::read_wal(bytes);
  EXPECT_FALSE(out.torn);
  EXPECT_EQ(out.valid_bytes, bytes.size());
  ASSERT_EQ(out.records.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out.records[i].lsn, in[i].lsn);
    EXPECT_EQ(out.records[i].op, in[i].op);
    EXPECT_EQ(out.records[i].commit, in[i].commit);
    EXPECT_EQ(out.records[i].table, in[i].table);
  }
  EXPECT_EQ(out.records[1].row.size(), 2u);
  EXPECT_EQ(out.records[1].row[1].as_text(), "compute-0-0");
  EXPECT_EQ(out.records[2].cells.size(), 2u);
  EXPECT_TRUE(out.records[2].cells[1].second.is_null());
  EXPECT_EQ(out.records[3].row_indexes, (std::vector<std::size_t>{0, 2, 5}));
  EXPECT_EQ(out.records[0].schema[0].name, "id");
  EXPECT_TRUE(out.records[0].schema[0].auto_increment);
}

TEST_F(DurabilityTest, WalReadStopsAtTornTail) {
  WalRecord record;
  record.op = WalOp::kInsert;
  record.table = "t";
  record.row = {sqldb::Value("v")};
  std::string bytes;
  for (std::uint64_t lsn = 1; lsn <= 3; ++lsn) {
    record.lsn = lsn;
    bytes += sqldb::encode_wal_record(record);
  }
  const std::size_t intact = bytes.size();
  record.lsn = 4;
  const std::string last = sqldb::encode_wal_record(record);
  bytes += last.substr(0, last.size() / 2);  // a power cut mid-append

  const auto out = sqldb::read_wal(bytes);
  EXPECT_TRUE(out.torn);
  EXPECT_EQ(out.records.size(), 3u);
  EXPECT_EQ(out.valid_bytes, intact);
}

TEST_F(DurabilityTest, WalReadStopsAtCorruptRecord) {
  WalRecord record;
  record.op = WalOp::kInsert;
  record.table = "t";
  record.row = {sqldb::Value("some payload bytes")};
  record.lsn = 1;
  std::string bytes = sqldb::encode_wal_record(record);
  const std::size_t first = bytes.size();
  record.lsn = 2;
  bytes += sqldb::encode_wal_record(record);
  record.lsn = 3;
  bytes += sqldb::encode_wal_record(record);

  bytes[first + 12] ^= 0x40;  // flip one bit inside record 2's payload
  const auto out = sqldb::read_wal(bytes);
  EXPECT_TRUE(out.torn);
  EXPECT_EQ(out.records.size(), 1u);  // records after the corruption are gone
  EXPECT_EQ(out.valid_bytes, first);
}

// --- snapshot codec ----------------------------------------------------------

TEST_F(DurabilityTest, SnapshotRoundTripsAndRejectsCorruption) {
  sqldb::SnapshotData in;
  in.last_lsn = 42;
  in.seq = 7;
  sqldb::TableState table;
  table.name = "nodes";
  table.columns = {{"id", sqldb::Type::kInt, true, true}, {"name", sqldb::Type::kText}};
  table.indexed = {"id", "name"};
  table.next_auto = 9;
  table.rows = {{sqldb::Value(std::int64_t{1}), sqldb::Value("frontend-0")},
                {sqldb::Value(std::int64_t{2}), sqldb::Value::null()}};
  in.tables.push_back(table);
  in.channels = {{"nodes", 12}, {"kickstart.graph", 3}};

  const std::string bytes = sqldb::encode_snapshot(in);
  const auto out = sqldb::decode_snapshot(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->last_lsn, 42u);
  EXPECT_EQ(out->seq, 7u);
  ASSERT_EQ(out->tables.size(), 1u);
  EXPECT_EQ(out->tables[0].next_auto, 9);
  EXPECT_EQ(out->tables[0].indexed, (std::vector<std::string>{"id", "name"}));
  ASSERT_EQ(out->tables[0].rows.size(), 2u);
  EXPECT_TRUE(out->tables[0].rows[1][1].is_null());
  EXPECT_EQ(out->channels, in.channels);

  for (const std::size_t victim : {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[victim] ^= 0x01;
    EXPECT_FALSE(sqldb::decode_snapshot(corrupt).has_value()) << "flipped byte " << victim;
  }
  EXPECT_FALSE(sqldb::decode_snapshot(bytes.substr(0, bytes.size() - 5)).has_value());
  EXPECT_FALSE(sqldb::decode_snapshot("").has_value());
}

TEST_F(DurabilityTest, SnapshotFileNamesRoundTrip) {
  EXPECT_EQ(sqldb::parse_snapshot_file_name(sqldb::snapshot_file_name(17)), 17u);
  // Zero padding keeps lexicographic listing in sequence order.
  EXPECT_LT(sqldb::snapshot_file_name(9), sqldb::snapshot_file_name(10));
  EXPECT_FALSE(sqldb::parse_snapshot_file_name("snapshot.tmp").has_value());
  EXPECT_FALSE(sqldb::parse_snapshot_file_name("wal.log").has_value());
  EXPECT_FALSE(sqldb::parse_snapshot_file_name("snapshot-12x.snap").has_value());
}

// --- database recovery round trips ------------------------------------------

const std::vector<std::string>& workload_statements() {
  static const std::vector<std::string> statements = {
      "CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, mac TEXT, name TEXT, ip TEXT)",
      "CREATE INDEX nodes_mac ON nodes (mac)",
      "INSERT INTO nodes (mac, name, ip) VALUES ('aa:00', 'compute-0-0', '10.1.1.2')",
      "INSERT INTO nodes (mac, name, ip) VALUES ('aa:01', 'compute-0-1', '10.1.1.3')",
      "INSERT INTO nodes (mac, name, ip) VALUES ('aa:02', 'compute-0-2', '10.1.1.4')",
      "UPDATE nodes SET ip = '10.9.9.9' WHERE name = 'compute-0-1'",
      "CREATE TABLE site (name TEXT, value TEXT)",
      "INSERT INTO site VALUES ('cluster', 'meteor'), ('owner', 'npaci')",
      "DELETE FROM nodes WHERE name = 'compute-0-0'",
      "INSERT INTO nodes (mac, name, ip) VALUES ('aa:03', 'compute-0-3', '10.1.1.5')",
      "UPDATE nodes SET ip = '10.2.2.2'",
      "DROP TABLE site",
      "CREATE TABLE site (name TEXT, value TEXT)",
      "INSERT INTO site VALUES ('cluster', 'rebuilt')",
  };
  return statements;
}

TEST_F(DurabilityTest, WalReplayRebuildsByteIdenticalState) {
  vfs::FileSystem disk;
  std::string expected;
  {
    Database db;
    const RecoveryReport fresh = db.open_durable(disk, kDir);
    EXPECT_FALSE(fresh.snapshot_loaded);
    EXPECT_EQ(fresh.last_lsn, 0u);
    for (const std::string& statement : workload_statements()) db.execute(statement);
    expected = db.dump_state();
  }
  Database recovered;
  const RecoveryReport report = recovered.open_durable(disk, kDir);
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_GT(report.wal_records_replayed, workload_statements().size() / 2);
  EXPECT_FALSE(report.wal_torn);
  EXPECT_EQ(report.wal_records_dropped, 0u);
  EXPECT_EQ(recovered.dump_state(), expected);
  EXPECT_EQ(recovered.dump_state(), replay_dump(workload_statements()));

  // The recovered store keeps working: new commits land in the same WAL and
  // survive another restart.
  recovered.execute("INSERT INTO site VALUES ('epoch', '2')");
  const std::string extended = recovered.dump_state();
  Database again;
  again.open_durable(disk, kDir);
  EXPECT_EQ(again.dump_state(), extended);
}

TEST_F(DurabilityTest, SnapshotPlusWalTailRecoversExactly) {
  vfs::FileSystem disk;
  std::string expected;
  {
    Database db;
    db.open_durable(disk, kDir);
    const auto& statements = workload_statements();
    for (std::size_t i = 0; i < statements.size(); ++i) {
      db.execute(statements[i]);
      if (i == 7) {
        EXPECT_EQ(db.snapshot(), 1u);
      }
    }
    expected = db.dump_state();
  }
  Database recovered;
  const RecoveryReport report = recovered.open_durable(disk, kDir);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshot_seq, 1u);
  EXPECT_GT(report.wal_records_replayed, 0u);
  EXPECT_EQ(report.wal_records_skipped, 0u);  // snapshot reset the WAL
  EXPECT_EQ(recovered.dump_state(), expected);
}

TEST_F(DurabilityTest, AutoIncrementCursorSurvivesDeletedMax) {
  vfs::FileSystem disk;
  {
    Database db;
    db.open_durable(disk, kDir);
    db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    for (int i = 0; i < 3; ++i) db.execute("INSERT INTO t (v) VALUES ('x')");
    db.execute("DELETE FROM t WHERE id = 3");
    db.snapshot();  // the cursor (4) is not derivable from surviving rows
  }
  Database recovered;
  recovered.open_durable(disk, kDir);
  recovered.execute("INSERT INTO t (v) VALUES ('y')");
  const auto rows = recovered.execute("SELECT id FROM t ORDER BY id");
  ASSERT_EQ(rows.row_count(), 3u);
  EXPECT_EQ(rows.rows[2][0].as_int(), 4);  // no id reuse
}

TEST_F(DurabilityTest, UncoercedUpdateValuesSurviveSnapshotVerbatim) {
  // UPDATE stores values without coercion; a snapshot restore must not
  // re-coerce them (restore_row, not insert).
  vfs::FileSystem disk;
  std::string expected;
  {
    Database db;
    db.open_durable(disk, kDir);
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
    db.execute("INSERT INTO t VALUES (1, 10)");
    db.execute("UPDATE t SET v = 'not-a-number' WHERE id = 1");
    db.snapshot();
    db.execute("UPDATE t SET v = 3.5 WHERE id = 1");  // and via WAL replay
    expected = db.dump_state();
  }
  Database recovered;
  recovered.open_durable(disk, kDir);
  EXPECT_EQ(recovered.dump_state(), expected);
}

// --- corruption & torn tails -------------------------------------------------

TEST_F(DurabilityTest, TornWalFlushDropsOnlyTheUnacknowledgedStatement) {
  vfs::FileSystem disk;
  std::string committed_dump;
  {
    Database db;
    db.open_durable(disk, kDir);
    db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    db.execute("INSERT INTO t (v) VALUES ('kept')");
    committed_dump = db.dump_state();
    CrashPoints::instance().arm("wal.flush.torn");
    EXPECT_THROW(db.execute("INSERT INTO t (v) VALUES ('torn')"), CrashError);
  }
  CrashPoints::instance().disarm_all();
  Database recovered;
  const RecoveryReport report = recovered.open_durable(disk, kDir);
  EXPECT_TRUE(report.wal_torn);
  EXPECT_EQ(recovered.dump_state(), committed_dump);

  // The truncated log is clean again: append, restart, no divergence.
  recovered.execute("INSERT INTO t (v) VALUES ('after')");
  Database again;
  const RecoveryReport second = again.open_durable(disk, kDir);
  EXPECT_FALSE(second.wal_torn);
  EXPECT_EQ(again.dump_state(), recovered.dump_state());
}

TEST_F(DurabilityTest, BitFlipInWalTruncatesAtLastValidRecord) {
  vfs::FileSystem disk;
  {
    Database db;
    db.open_durable(disk, kDir);
    db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    for (int i = 0; i < 5; ++i) db.execute("INSERT INTO t (v) VALUES ('row')");
  }
  const std::string wal_path = vfs::join(kDir, sqldb::kWalFileName);
  std::string bytes = disk.read_file(wal_path);
  bytes[bytes.size() * 3 / 4] ^= 0x10;  // bit rot somewhere in the later records
  disk.write_file(wal_path, std::move(bytes));

  Database recovered;
  const RecoveryReport report = recovered.open_durable(disk, kDir);
  EXPECT_TRUE(report.wal_torn);
  EXPECT_LT(report.wal_records_replayed, 6u);
  // Whatever survived is a valid prefix: same as replaying that many
  // statements from scratch.
  const auto rows = recovered.execute("SELECT id FROM t ORDER BY id");
  std::vector<std::string> prefix = {
      "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)"};
  for (std::size_t i = 0; i < rows.row_count(); ++i)
    prefix.push_back("INSERT INTO t (v) VALUES ('row')");
  EXPECT_EQ(recovered.dump_state(), replay_dump(prefix));
}

TEST_F(DurabilityTest, CorruptNewestSnapshotFallsBackAndDropsGappedWal) {
  vfs::FileSystem disk;
  std::string state_a;
  {
    Database db;
    db.open_durable(disk, kDir);
    db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    db.execute("INSERT INTO t (v) VALUES ('a')");
    state_a = db.dump_state();
    EXPECT_EQ(db.snapshot(), 1u);
    db.execute("INSERT INTO t (v) VALUES ('b')");
    EXPECT_EQ(db.snapshot(), 2u);
    db.execute("INSERT INTO t (v) VALUES ('c')");  // lives only in the WAL
  }
  // Bit-rot the newest snapshot.
  const std::string newest = vfs::join(kDir, sqldb::snapshot_file_name(2));
  std::string bytes = disk.read_file(newest);
  bytes[bytes.size() / 2] ^= 0x01;
  disk.write_file(newest, std::move(bytes));

  Database recovered;
  const RecoveryReport report = recovered.open_durable(disk, kDir);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshot_seq, 1u);
  EXPECT_EQ(report.snapshots_skipped, 1u);
  // The 'c' record presumes snapshot 2's state; applying it to snapshot 1
  // would corrupt, so the LSN gap drops it.
  EXPECT_EQ(report.wal_records_replayed, 0u);
  EXPECT_EQ(report.wal_records_dropped, 1u);
  EXPECT_EQ(recovered.dump_state(), state_a);
  // Sequence numbers keep moving forward past the corrupt file.
  EXPECT_EQ(recovered.snapshot(), 3u);
}

// --- group commit ------------------------------------------------------------

TEST_F(DurabilityTest, GroupCommitLosesOnlyTheUnflushedTail) {
  vfs::FileSystem disk;
  {
    Database db;
    db.open_durable(disk, kDir);
    db.set_wal_group_commit(8);
    db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    for (int i = 0; i < 20; ++i) db.execute("INSERT INTO t (v) VALUES ('x')");
    // 21 commits, batch 8: flushed at 8 and 16; five statements buffered.
    EXPECT_EQ(db.wal_flushes(), 2u);
    EXPECT_EQ(db.wal_records_appended(), 21u);
  }  // crash: the buffer dies with the process
  Database recovered;
  recovered.open_durable(disk, kDir);
  EXPECT_EQ(recovered.execute("SELECT id FROM t").row_count(), 15u);  // 16 - CREATE

  // An explicit barrier makes the tail durable.
  recovered.set_wal_group_commit(8);
  for (int i = 0; i < 3; ++i) recovered.execute("INSERT INTO t (v) VALUES ('y')");
  recovered.wal_flush();
  Database again;
  again.open_durable(disk, kDir);
  EXPECT_EQ(again.dump_state(), recovered.dump_state());
}

// --- journal truncation floor (satellite fix) --------------------------------

TEST_F(DurabilityTest, BoundedChangelogRecordsTruncationFloor) {
  Database db;
  db.journal().set_capacity(4);
  db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  const std::uint64_t after_create = db.revision("t");
  for (int i = 0; i < 10; ++i) db.execute("INSERT INTO t (v) VALUES ('x')");

  const auto stale = db.since("t", after_create);
  EXPECT_TRUE(stale.truncated);
  EXPECT_EQ(stale.floor, db.journal().floor("t"));
  EXPECT_GT(stale.floor, after_create);  // the cursor is below the floor

  // A cursor at the floor is exactly servable: one record per revision up
  // to the head — since() and the floor agree on where incremental
  // consumption may resume.
  const auto fresh = db.since("t", stale.floor);
  EXPECT_FALSE(fresh.truncated);
  EXPECT_EQ(fresh.changes.size(), stale.revision - stale.floor);
}

TEST_F(DurabilityTest, ReplayedBurstBeyondCapacityForcesRescanConsistently) {
  vfs::FileSystem disk;
  std::uint64_t pre_crash_cursor = 0;
  std::uint64_t pre_crash_revision = 0;
  {
    Database db;
    db.open_durable(disk, kDir);
    db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    pre_crash_cursor = db.revision("t");
    for (int i = 0; i < 10; ++i) db.execute("INSERT INTO t (v) VALUES ('x')");
    pre_crash_revision = db.revision("t");
  }
  // Recover with a journal capacity smaller than the replayed burst: the
  // replay trims as it re-records, so the floor must rise above the
  // pre-crash cursor and force a full rescan — NOT silently serve a
  // partial delta.
  Database recovered;
  recovered.journal().set_capacity(4);
  recovered.open_durable(disk, kDir);
  EXPECT_EQ(recovered.revision("t"), pre_crash_revision);  // revisions in lockstep
  const auto delta = recovered.since("t", pre_crash_cursor);
  EXPECT_TRUE(delta.truncated);
  EXPECT_GE(delta.floor, pre_crash_revision - 4);
  EXPECT_EQ(delta.revision, pre_crash_revision);
  // And a snapshot-based recovery (no row records at all) floors at the
  // head: every pre-crash cursor rescans.
  recovered.snapshot();
  Database from_snapshot;
  from_snapshot.open_durable(disk, kDir);
  EXPECT_EQ(from_snapshot.journal().floor("t"), pre_crash_revision);
  EXPECT_TRUE(from_snapshot.since("t", pre_crash_cursor).truncated);
}

// --- the crash sweep ---------------------------------------------------------

struct SweepRun {
  std::vector<std::string> committed;      // statements that returned
  std::optional<std::string> failing;      // the statement a crash escaped from
  bool crashed = false;
};

SweepRun run_workload(vfs::FileSystem& disk) {
  SweepRun out;
  Database db;
  db.open_durable(disk, kDir);
  const auto& statements = workload_statements();
  for (std::size_t i = 0; i < statements.size(); ++i) {
    try {
      db.execute(statements[i]);
    } catch (const CrashError&) {
      out.crashed = true;
      out.failing = statements[i];
      return out;
    }
    out.committed.push_back(statements[i]);
    if (i == 7) {
      try {
        db.snapshot();  // a checkpoint mid-workload, so snapshot points run
      } catch (const CrashError&) {
        out.crashed = true;  // no failing statement: snapshot mutates nothing
        return out;
      }
    }
  }
  return out;
}

TEST_F(DurabilityTest, CrashSweepRecoversByteIdenticalAtEveryPoint) {
  auto& points = CrashPoints::instance();
  points.disarm_all();

  // Discovery: run the workload clean and collect every crash point it
  // crosses (hit counters move only for points actually on this path).
  std::map<std::string, std::uint64_t> hits_before;
  for (const std::string& name : points.registered())
    hits_before[name] = points.hits(name);
  {
    vfs::FileSystem disk;
    const SweepRun clean = run_workload(disk);
    ASSERT_FALSE(clean.crashed);
  }
  std::vector<std::string> sweep;
  for (const std::string& name : points.registered())
    if (points.hits(name) > hits_before[name]) sweep.push_back(name);
  // The catalog this sweep must at least cover (DESIGN.md §11.4).
  for (const char* required : {"wal.flush.before", "wal.flush.torn", "wal.flush.after",
                               "snapshot.write.before", "snapshot.write.after",
                               "snapshot.rename.after", "snapshot.retire.before"})
    EXPECT_NE(std::find(sweep.begin(), sweep.end(), required), sweep.end()) << required;

  int crashes = 0;
  for (const std::string& point : sweep) {
    for (const std::uint64_t countdown : {1u, 4u, 9u}) {
      vfs::FileSystem disk;
      points.arm(point, countdown);
      const SweepRun run = run_workload(disk);
      points.disarm_all();
      crashes += run.crashed ? 1 : 0;

      Database recovered;
      recovered.open_durable(disk, kDir);
      const std::string dump = recovered.dump_state();

      // Committed state is the floor; the failing statement may or may not
      // have reached the disk before the crash (crash-after-flush), but a
      // statement is all-or-nothing — anything else fails both candidates.
      const std::string without = replay_dump(run.committed);
      bool matched = dump == without;
      if (!matched && run.failing) {
        auto with = run.committed;
        with.push_back(*run.failing);
        matched = dump == replay_dump(with);
      }
      EXPECT_TRUE(matched) << "point=" << point << " countdown=" << countdown
                           << (run.crashed ? " (crashed)" : " (ran clean)");
    }
  }
  EXPECT_GT(crashes, 0);  // the sweep actually crashed something
}

// --- atomic config-file publication ------------------------------------------

TEST_F(DurabilityTest, ConfigFileReadersSeeOldOrNewNeverPartial) {
  Database db;
  db.execute("CREATE TABLE users (name TEXT, uid INT)");
  db.execute("INSERT INTO users VALUES ('root', 0)");
  services::ServiceManager manager;
  manager.register_service("passwd", "/etc/passwd",
                           [](Database& d) {
                             std::string out;
                             const auto rows =
                                 d.execute("SELECT name, uid FROM users ORDER BY uid");
                             for (const auto& row : rows.rows)
                               out += row[0].to_string() + ":" + row[1].to_string() + "\n";
                             return out;
                           },
                           {"users"});
  vfs::FileSystem fs;
  fs.mkdir_p("/etc");
  manager.regenerate(db, fs);
  const std::string old_content = fs.read_file("/etc/passwd");
  ASSERT_NE(old_content.find("root:0"), std::string::npos);

  db.execute("INSERT INTO users VALUES ('alice', 501)");
  auto& points = CrashPoints::instance();
  // Crash before publication (mid temp-file write, or between the write
  // and the rename): the live file is still the old one, complete.
  for (const char* point : {"services.config.tmp.torn", "services.config.rename.before"}) {
    points.arm(point);
    EXPECT_THROW(manager.regenerate(db, fs), CrashError) << point;
    EXPECT_EQ(fs.read_file("/etc/passwd"), old_content) << point;
  }
  points.disarm_all();
  // Crash after the rename: the new file is live, complete.
  points.arm("services.config.rename.after");
  EXPECT_THROW(manager.regenerate(db, fs), CrashError);
  EXPECT_NE(fs.read_file("/etc/passwd").find("alice:501"), std::string::npos);
  EXPECT_NE(fs.read_file("/etc/passwd").find("root:0"), std::string::npos);
}

// --- insert-ethers crash safety ----------------------------------------------

cluster::ClusterConfig durable_config(vfs::FileSystem& state) {
  cluster::ClusterConfig config;
  config.synth.filler_packages = 20;
  config.frontend.state_fs = &state;
  return config;
}

TEST_F(DurabilityTest, InterruptedRegistrationRecoversCleanly) {
  auto& points = CrashPoints::instance();
  vfs::FileSystem state;  // the frontend's disk, which survives the crash
  std::vector<Mac> macs;
  for (int i = 0; i < 8; ++i) macs.push_back(Mac{0x00508BE00000ULL + i});

  std::string pre_crash_dump;
  {
    cluster::Cluster cluster(durable_config(state));
    EXPECT_FALSE(cluster.frontend().recovered());
    points.arm("insert_ethers.batch", 5);  // die before the fifth node
    EXPECT_THROW(cluster.insert_ethers().register_batch(macs), CrashError);
    points.disarm_all();
    pre_crash_dump = cluster.frontend().db().dump_state();
  }  // frontend process gone

  cluster::Cluster cluster(durable_config(state));
  EXPECT_TRUE(cluster.frontend().recovered());
  // Byte-identical to the committed pre-crash state: the four registered
  // nodes, fully registered, nothing half-written.
  EXPECT_EQ(cluster.frontend().db().dump_state(), pre_crash_dump);
  const auto rows =
      cluster.frontend().db().execute("SELECT name, ip FROM nodes ORDER BY id");
  EXPECT_EQ(rows.row_count(), 5u);  // frontend + 4 compute
  std::set<std::string> ips;
  for (const auto& row : rows.rows) ips.insert(row[1].to_string());
  EXPECT_EQ(ips.size(), rows.row_count());  // no duplicate IPs

  // The batch can simply be re-run: the four survivors are recognized, the
  // four lost ones register fresh, and the derived configs cover all.
  EXPECT_EQ(cluster.insert_ethers().register_batch(macs), 4);
  const auto after =
      cluster.frontend().db().execute("SELECT name, ip FROM nodes ORDER BY id");
  EXPECT_EQ(after.row_count(), 9u);
  std::set<std::string> final_ips;
  for (const auto& row : after.rows) {
    final_ips.insert(row[1].to_string());
    EXPECT_NE(cluster.frontend().fs().read_file("/etc/hosts").find(row[0].to_string()),
              std::string::npos);
  }
  EXPECT_EQ(final_ips.size(), after.row_count());
}

TEST_F(DurabilityTest, FrontendCheckpointBoundsRecoveryAndStateMatches) {
  vfs::FileSystem state;
  std::string expected_nodes;
  std::string expected_users;
  {
    cluster::Cluster cluster(durable_config(state));
    std::vector<Mac> macs;
    for (int i = 0; i < 6; ++i) macs.push_back(Mac{0x00508BE10000ULL + i});
    cluster.insert_ethers().register_batch(macs);
    cluster.frontend().checkpoint();
    cluster.frontend().add_user("mjk", 500);  // lands in the WAL tail
    expected_nodes =
        cluster.frontend().db().execute("SELECT * FROM nodes ORDER BY id").render();
    expected_users =
        cluster.frontend().db().execute("SELECT name, uid FROM users ORDER BY uid").render();
  }
  cluster::Cluster cluster(durable_config(state));
  EXPECT_TRUE(cluster.frontend().recovered());
  EXPECT_TRUE(cluster.frontend().recovery().snapshot_loaded);
  EXPECT_GT(cluster.frontend().recovery().wal_records_replayed, 0u);
  // Snapshot + WAL tail reproduce the tables exactly. (Full dump_state
  // equality is a Database-level property; across a frontend reboot the
  // external bus channels — graph, distribution — legitimately advance as
  // the new constructor re-touches them.)
  EXPECT_EQ(cluster.frontend().db().execute("SELECT * FROM nodes ORDER BY id").render(),
            expected_nodes);
  EXPECT_EQ(
      cluster.frontend().db().execute("SELECT name, uid FROM users ORDER BY uid").render(),
      expected_users);
  // Derived state caught up on boot: NIS map and hosts reflect the
  // recovered database.
  EXPECT_NE(cluster.frontend().nis_passwd_map().find("mjk"), std::string::npos);
  EXPECT_NE(cluster.frontend().fs().read_file("/etc/hosts").find("compute-0-5"),
            std::string::npos);
}

/// Regression: checkpoints racing a registration burst. Each snapshot
/// captures a commit boundary (last_lsn = the capture-time commit
/// timestamp) and truncates exactly the WAL prefix it absorbed, so no
/// interleaving of snapshot() against committing INSERTs can lose a
/// statement or replay one twice. Recovery from the final disk image must
/// be byte-identical to the store that wrote it, wherever the checkpoints
/// happened to land inside the burst.
TEST_F(DurabilityTest, CheckpointDuringRegistrationBurstRecoversByteIdentical) {
  constexpr std::size_t kBurst = 200;
  vfs::FileSystem disk;
  std::string expected;
  std::uint64_t snapshots_taken = 0;
  {
    Database db;
    db.open_durable(disk, kDir);
    db.set_wal_group_commit(8);  // insert-ethers' amortization knob
    db.execute(
        "CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, mac TEXT, name TEXT)");
    db.execute("CREATE INDEX nodes_mac ON nodes (mac)");

    std::thread burst([&db] {
      for (std::size_t i = 0; i < kBurst; ++i)
        db.execute(strings::cat("INSERT INTO nodes (mac, name) VALUES ('",
                                Mac(0x00508BE00000ULL + i).to_string(), "', 'compute-0-", i,
                                "')"));
    });
    // Checkpoints fired blind into the middle of the burst: each one
    // serializes from a pinned read view while the writer keeps committing.
    for (int i = 0; i < 5; ++i) snapshots_taken = db.snapshot();
    burst.join();
    db.wal_flush();  // the barrier a real batch ends with
    expected = db.dump_state();
    EXPECT_EQ(db.execute("SELECT id FROM nodes").row_count(), kBurst);
  }
  EXPECT_GE(snapshots_taken, 5u);

  Database recovered;
  const RecoveryReport report = recovered.open_durable(disk, kDir);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(recovered.dump_state(), expected);
}

// --- WAL flush IO failures (§11 satellite) -----------------------------------

TEST_F(DurabilityTest, WalFlushFailureNamesLsnRangeAndBufferSurvives) {
  vfs::FileSystem disk;
  Database db;
  db.open_durable(disk, kDir);
  db.set_wal_group_commit(100);  // buffer everything; flush is explicit
  db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  db.execute("INSERT INTO t (v) VALUES ('a')");
  db.execute("INSERT INTO t (v) VALUES ('b')");

  disk.arm_write_fault(sqldb::kWalFileName);
  try {
    db.wal_flush();
    FAIL() << "flush over a failing disk must throw";
  } catch (const IoError& error) {
    // The error names exactly which LSNs did not become durable.
    EXPECT_NE(std::string(error.what()).find("LSN range [1, 3]"), std::string::npos)
        << error.what();
  }
  // Nothing reached the disk, nothing was dropped: the same buffer flushes
  // intact once the disk heals (the fault is one-shot).
  EXPECT_EQ(disk.is_file(vfs::join(kDir, sqldb::kWalFileName)), false);
  db.wal_flush();
  Database recovered;
  recovered.open_durable(disk, kDir);
  EXPECT_EQ(recovered.dump_state(), db.dump_state());
}

TEST_F(DurabilityTest, FrontendBarrierRefusesToAckOnFlushFailure) {
  vfs::FileSystem state;
  {
    cluster::Cluster cluster(durable_config(state));
    auto& frontend = cluster.frontend();
    // The durability barrier runs inside flush_services: with the WAL
    // append failing, the flush must surface the IoError — the caller's
    // batch is never acknowledged, no config file moves.
    const std::string hosts_before = frontend.fs().read_file("/etc/hosts");
    state.arm_write_fault(sqldb::kWalFileName);
    EXPECT_THROW(frontend.add_user("ghost", 600), IoError);
    EXPECT_EQ(frontend.fs().read_file("/etc/hosts"), hosts_before);
    EXPECT_EQ(frontend.nis_passwd_map().find("ghost"), std::string::npos);
    // Disk heals: the retried barrier drains the same buffer and the
    // pending row becomes durable and visible.
    frontend.flush_services();
    EXPECT_NE(frontend.nis_passwd_map().find("ghost"), std::string::npos);
  }
  cluster::Cluster cluster(durable_config(state));
  EXPECT_NE(cluster.frontend().nis_passwd_map().find("ghost"), std::string::npos);
}

// --- snapshot-corruption fallback (§11 satellite) ----------------------------

/// Builds a store with two retained snapshots and a WAL tail; returns the
/// dump after each snapshot so per-slot corruption tests can assert exactly
/// which state survives.
struct TwoSnapshotStore {
  std::string dump_snap1;
  std::string dump_snap2;
  std::string dump_final;
};

TwoSnapshotStore build_two_snapshot_store(vfs::FileSystem& disk) {
  TwoSnapshotStore out;
  Database db;
  db.open_durable(disk, kDir);
  db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  db.execute("INSERT INTO t (v) VALUES ('a')");
  out.dump_snap1 = db.dump_state();
  EXPECT_EQ(db.snapshot(), 1u);
  db.execute("INSERT INTO t (v) VALUES ('b')");
  out.dump_snap2 = db.dump_state();
  EXPECT_EQ(db.snapshot(), 2u);
  db.execute("INSERT INTO t (v) VALUES ('c')");  // lives only in the WAL
  out.dump_final = db.dump_state();
  return out;
}

void flip_bit(vfs::FileSystem& disk, const std::string& path) {
  std::string bytes = disk.read_file(path);
  bytes[bytes.size() / 2] ^= 0x01;
  disk.write_file(path, std::move(bytes));
}

TEST_F(DurabilityTest, CorruptOlderSnapshotSlotDoesNotAffectRecovery) {
  vfs::FileSystem disk;
  const TwoSnapshotStore store = build_two_snapshot_store(disk);
  flip_bit(disk, vfs::join(kDir, sqldb::snapshot_file_name(1)));

  Database recovered;
  const RecoveryReport report = recovered.open_durable(disk, kDir);
  // The newest slot is intact; the rotted older slot is never even read.
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshot_seq, 2u);
  EXPECT_EQ(report.snapshots_skipped, 0u);
  EXPECT_EQ(report.wal_records_replayed, 1u);
  EXPECT_EQ(recovered.dump_state(), store.dump_final);
}

TEST_F(DurabilityTest, BothSnapshotsCorruptReportsCleanlyAndStoreStaysUsable) {
  vfs::FileSystem disk;
  build_two_snapshot_store(disk);
  flip_bit(disk, vfs::join(kDir, sqldb::snapshot_file_name(1)));
  flip_bit(disk, vfs::join(kDir, sqldb::snapshot_file_name(2)));

  Database recovered;
  const RecoveryReport report = recovered.open_durable(disk, kDir);
  // Every retained snapshot is gone; the report says so rather than
  // guessing. The WAL tail presumed snapshot 2's state, so the LSN gap
  // drops it — recovery lands on the empty store, never on garbage.
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshots_skipped, 2u);
  EXPECT_EQ(report.wal_records_replayed, 0u);
  EXPECT_EQ(report.wal_records_dropped, 1u);
  EXPECT_EQ(recovered.table_names().size(), 0u);

  // The survivor is a fully working store: new history builds, checkpoints,
  // and recovers from here (sequence numbers move past the corpses).
  recovered.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  recovered.execute("INSERT INTO t (v) VALUES ('fresh')");
  EXPECT_EQ(recovered.snapshot(), 3u);
  Database again;
  const RecoveryReport second = again.open_durable(disk, kDir);
  EXPECT_TRUE(second.snapshot_loaded);
  EXPECT_EQ(second.snapshot_seq, 3u);
  EXPECT_EQ(again.dump_state(), recovered.dump_state());
}

TEST_F(DurabilityTest, WalOnlyStoreRecoversWithNoSnapshotEverWritten) {
  vfs::FileSystem disk;
  std::string expected;
  {
    Database db;
    db.open_durable(disk, kDir);
    db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
    for (int i = 0; i < 10; ++i) db.execute("INSERT INTO t (v) VALUES ('w')");
    expected = db.dump_state();
  }
  Database recovered;
  const RecoveryReport report = recovered.open_durable(disk, kDir);
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshots_skipped, 0u);
  EXPECT_EQ(report.wal_records_replayed, 11u);
  EXPECT_EQ(recovered.dump_state(), expected);
}

}  // namespace
}  // namespace rocks
