// Tests for the batch substrate: PBS/Maui scheduling, the Section 5
// "reinstall cluster" job, and REXEC remote execution.
#include <gtest/gtest.h>

#include <memory>

#include "batch/mpirun.hpp"
#include "batch/pbs.hpp"
#include "batch/rexec.hpp"
#include "support/error.hpp"

namespace rocks::batch {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster::ClusterConfig config;
    config.synth.filler_packages = 50;
    cluster_ = std::make_unique<cluster::Cluster>(std::move(config));
    for (int i = 0; i < 4; ++i) cluster_->add_node();
    cluster_->integrate_all();
    pbs_ = std::make_unique<PbsServer>(*cluster_);
  }

  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<PbsServer> pbs_;
};

TEST_F(BatchTest, UserJobRunsForWalltime) {
  const JobId id = pbs_->submit({"mdrun", JobKind::kUser, 2, 300.0});
  pbs_->schedule();
  EXPECT_EQ(pbs_->job(id).state, JobState::kRunning);
  EXPECT_EQ(pbs_->job(id).assigned_nodes.size(), 2u);
  // The job's processes are visible on the nodes.
  EXPECT_EQ(cluster_->node(pbs_->job(id).assigned_nodes[0])->process_count(), 1u);
  pbs_->drain();
  EXPECT_EQ(pbs_->job(id).state, JobState::kComplete);
  EXPECT_NEAR(pbs_->job(id).completed_at - pbs_->job(id).started_at, 300.0, 0.01);
  EXPECT_EQ(cluster_->node("compute-0-0")->process_count(), 0u);
}

TEST_F(BatchTest, JobsQueueWhenClusterFull) {
  const JobId big = pbs_->submit({"big", JobKind::kUser, 4, 100.0});
  const JobId next = pbs_->submit({"next", JobKind::kUser, 4, 100.0});
  pbs_->schedule();
  EXPECT_EQ(pbs_->job(big).state, JobState::kRunning);
  EXPECT_EQ(pbs_->job(next).state, JobState::kQueued);
  pbs_->drain();
  EXPECT_EQ(pbs_->job(next).state, JobState::kComplete);
  // FIFO: next started when big finished.
  EXPECT_NEAR(pbs_->job(next).started_at, pbs_->job(big).completed_at, 0.01);
}

TEST_F(BatchTest, BackfillLetsSmallJobsJumpAhead) {
  pbs_->submit({"wide", JobKind::kUser, 3, 500.0});
  const JobId blocked = pbs_->submit({"wide2", JobKind::kUser, 3, 100.0});
  const JobId small = pbs_->submit({"small", JobKind::kUser, 1, 50.0});
  pbs_->schedule();
  // wide runs on 3 of 4 nodes; wide2 cannot start; small backfills the
  // remaining node.
  EXPECT_EQ(pbs_->job(small).state, JobState::kRunning);
  EXPECT_EQ(pbs_->job(blocked).state, JobState::kQueued);
  pbs_->drain();
}

TEST_F(BatchTest, CancelQueuedJob) {
  pbs_->submit({"hog", JobKind::kUser, 4, 100.0});
  const JobId waiting = pbs_->submit({"waiting", JobKind::kUser, 1, 10.0});
  pbs_->schedule();
  EXPECT_TRUE(pbs_->cancel(waiting));
  EXPECT_FALSE(pbs_->cancel(waiting));  // no longer queued
  pbs_->drain();
  EXPECT_EQ(pbs_->job(waiting).state, JobState::kCancelled);
  EXPECT_LT(pbs_->job(waiting).started_at, 0.0);  // never ran
}

TEST_F(BatchTest, ReinstallClusterJobTouchesEveryComputeNode) {
  const JobId id = pbs_->submit({"reinstall-cluster", JobKind::kReinstall, 0, 0.0});
  pbs_->drain();
  EXPECT_EQ(pbs_->job(id).state, JobState::kComplete);
  for (auto* node : cluster_->nodes()) EXPECT_EQ(node->install_count(), 2);
  EXPECT_TRUE(cluster_->consistent());
}

TEST_F(BatchTest, ReinstallWaitsForRunningJobs) {
  // Section 5: the upgrade "does not disturb any running applications".
  const JobId user = pbs_->submit({"simulation", JobKind::kUser, 2, 400.0});
  const JobId reinstall = pbs_->submit({"reinstall-cluster", JobKind::kReinstall, 0, 0.0});
  pbs_->drain();

  // The user job ran its full walltime, uninterrupted.
  EXPECT_NEAR(pbs_->job(user).completed_at - pbs_->job(user).started_at, 400.0, 0.01);
  // The reinstall completed only after the user job's nodes became free.
  EXPECT_GT(pbs_->job(reinstall).completed_at, pbs_->job(user).completed_at);
  for (auto* node : cluster_->nodes()) EXPECT_EQ(node->install_count(), 2);
}

TEST_F(BatchTest, UserJobsResumeOnReinstalledNodes) {
  pbs_->submit({"reinstall-cluster", JobKind::kReinstall, 0, 0.0});
  const JobId after = pbs_->submit({"post-upgrade", JobKind::kUser, 4, 60.0});
  pbs_->drain();
  EXPECT_EQ(pbs_->job(after).state, JobState::kComplete);
  // It ran on freshly reinstalled nodes: started after at least one node's
  // second install finished.
  EXPECT_GT(pbs_->job(after).started_at, 600.0);
}

TEST_F(BatchTest, QstatRendersJobTable) {
  pbs_->submit({"mdrun", JobKind::kUser, 1, 10.0});
  pbs_->schedule();
  const std::string report = pbs_->qstat();
  EXPECT_NE(report.find("mdrun"), std::string::npos);
  EXPECT_NE(report.find("user"), std::string::npos);
  EXPECT_THROW((void)pbs_->job(999), LookupError);
}

TEST_F(BatchTest, RexecPropagatesContextAndRedirectsStdout) {
  Rexec rexec(*cluster_);
  RexecContext context;
  context.uid = 1042;
  context.cwd = "/export/home/bruno";
  context.env["MPI_ROOT"] = "/opt/mpich";
  const RunId id = rexec.launch({"compute-0-0", "compute-0-1"}, "hostname", 30.0, context);
  EXPECT_EQ(rexec.running_count(id), 2u);
  cluster_->sim().run_until(cluster_->sim().now() + 60.0);
  EXPECT_EQ(rexec.running_count(id), 0u);
  const auto& procs = rexec.processes(id);
  ASSERT_EQ(procs.size(), 2u);
  for (const auto& proc : procs) {
    EXPECT_EQ(proc.exit_code, 0);
    EXPECT_NE(proc.stdout_lines[0].find("uid=1042"), std::string::npos);
    EXPECT_NE(proc.stdout_lines[0].find("cwd=/export/home/bruno"), std::string::npos);
    bool env_seen = false;
    for (const auto& line : proc.stdout_lines)
      if (line.find("MPI_ROOT=/opt/mpich") != std::string::npos) env_seen = true;
    EXPECT_TRUE(env_seen);
  }
}

TEST_F(BatchTest, RexecForwardsSignals) {
  Rexec rexec(*cluster_);
  const RunId id = rexec.launch({"compute-0-0", "compute-0-1", "compute-0-2"},
                                "mpirun -np 3 a.out", 1000.0);
  EXPECT_EQ(rexec.running_count(id), 3u);
  const std::size_t delivered = rexec.forward_signal(id, 15);
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(rexec.running_count(id), 0u);
  for (const auto& proc : rexec.processes(id)) EXPECT_EQ(proc.exit_code, 128 + 15);
  EXPECT_EQ(cluster_->node("compute-0-0")->process_count(), 0u);
}

TEST_F(BatchTest, MpirunFillsSlotsRoundRobin) {
  Rexec rexec(*cluster_);
  Mpirun mpirun(*cluster_, rexec);
  // 4 nodes x 2 slots = 8 slots.
  EXPECT_EQ(mpirun.machinefile().size(), 8u);
  const auto launch = mpirun.run(6, "cpi", 100.0);
  EXPECT_EQ(launch.machinefile.size(), 6u);
  EXPECT_EQ(launch.machinefile[0], launch.machinefile[1]);  // 2 slots per node
  EXPECT_NE(launch.machinefile[0], launch.machinefile[2]);
  EXPECT_EQ(rexec.running_count(launch.run), 6u);
  // MPI rank count is propagated through the environment.
  bool saw_nprocs = false;
  for (const auto& line : rexec.processes(launch.run)[0].stdout_lines)
    if (line.find("MPIRUN_NPROCS=6") != std::string::npos) saw_nprocs = true;
  EXPECT_TRUE(saw_nprocs);
  cluster_->sim().run_until(cluster_->sim().now() + 150.0);
  EXPECT_EQ(rexec.running_count(launch.run), 0u);
}

TEST_F(BatchTest, MpirunRejectsOversubscription) {
  Rexec rexec(*cluster_);
  Mpirun mpirun(*cluster_, rexec);
  EXPECT_THROW(mpirun.run(9, "cpi", 10.0), StateError);
  EXPECT_THROW(mpirun.run(0, "cpi", 10.0), StateError);
  cluster_->node("compute-0-0")->power_off();
  EXPECT_EQ(mpirun.machinefile().size(), 6u);  // 3 nodes remain
}

TEST_F(BatchTest, RexecReportsUnreachableHosts) {
  cluster_->node("compute-0-3")->power_off();
  Rexec rexec(*cluster_);
  const RunId id = rexec.launch({"compute-0-2", "compute-0-3", "ghost"}, "uptime", 5.0);
  EXPECT_EQ(rexec.running_count(id), 1u);
  cluster_->sim().run_until(cluster_->sim().now() + 10.0);
  const auto& procs = rexec.processes(id);
  EXPECT_EQ(procs[0].exit_code, 0);
  EXPECT_EQ(procs[1].exit_code, -1);  // powered off
  EXPECT_EQ(procs[2].exit_code, -1);  // unknown host
}

}  // namespace
}  // namespace rocks::batch
