// The fault-tolerant batch scheduler (DESIGN.md §16): durable queue with
// exactly-once accounting, EASY backfill with the no-starvation bound, the
// shrink valve, requeue-on-node-death under a retry budget, crash recovery
// (stale-row repair + byte-identical resume), reinstall waves with the
// health gate, the attached-cluster drain-not-preempt path, and a mini
// chaos soak (random node kills + mid-finish crashes).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "batch/accounting.hpp"
#include "batch/scheduler.hpp"
#include "cluster/cluster.hpp"
#include "netsim/engine.hpp"
#include "sqldb/engine.hpp"
#include "support/crashpoint.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "tools/cluster_tools.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::batch {
namespace {

using sqldb::Database;
using support::CrashError;
using support::CrashPoints;

constexpr const char* kDir = "/state/db";

JobSpec user_job(std::string name, std::size_t nodes, double walltime,
                 std::size_t min_nodes = 0, int max_retries = 3) {
  JobSpec spec;
  spec.name = std::move(name);
  spec.kind = JobKind::kUser;
  spec.nodes = nodes;
  spec.walltime_seconds = walltime;
  spec.min_nodes = min_nodes;
  spec.max_retries = max_retries;
  return spec;
}

/// Standalone scheduler over a durable database and a bare simulator: the
/// caller plays the cluster (register_node / node_down / node_up).
struct Standalone {
  vfs::FileSystem disk;
  netsim::Simulator sim;
  Database db;
  std::unique_ptr<Scheduler> sched;

  explicit Standalone(std::size_t nodes, SchedulerConfig config = {}) {
    db.open_durable(disk, kDir);
    sched = std::make_unique<Scheduler>(db, sim, config);
    for (std::size_t i = 0; i < nodes; ++i) sched->register_node(host(i));
    sched->resume();
  }
  static std::string host(std::size_t i) { return strings::cat("n", i / 10, i % 10); }
};

class SchedulerTest : public ::testing::Test {
 protected:
  void TearDown() override { CrashPoints::instance().disarm_all(); }
};

// --- the basics --------------------------------------------------------------

TEST_F(SchedulerTest, JobsRunAndLandInAccountingExactlyOnce) {
  Standalone s(4);
  const JobId a = s.sched->submit(user_job("alpha", 2, 100.0));
  const JobId b = s.sched->submit(user_job("beta", 2, 50.0));
  s.sched->drain();
  EXPECT_EQ(s.sched->live_count(), 0u);
  EXPECT_EQ(s.sched->idle_nodes(), 4u);

  const AccountingTotals totals = Accounting::totals(s.db);
  EXPECT_EQ(totals.completed, 2u);
  EXPECT_EQ(totals.cancelled, 0u);
  EXPECT_EQ(totals.duplicate_ids, 0u);

  const auto ra = Accounting::lookup(s.db, a);
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(ra->state, JobState::kComplete);
  EXPECT_EQ(ra->nodes_used, 2u);
  EXPECT_DOUBLE_EQ(ra->started, 0.0);
  EXPECT_DOUBLE_EQ(ra->ended, 100.0);

  const auto rb = Accounting::lookup(s.db, b);
  ASSERT_TRUE(rb.has_value());
  EXPECT_DOUBLE_EQ(rb->ended - rb->started, 50.0);  // both fit side by side
}

TEST_F(SchedulerTest, CancelWorksQueuedAndRunning) {
  Standalone s(2);
  const JobId running = s.sched->submit(user_job("hog", 2, 1000.0));
  const JobId waiting = s.sched->submit(user_job("waiting", 1, 10.0));
  s.sim.run_until(1.0);
  ASSERT_EQ(s.sched->job(running)->state, JobState::kRunning);

  EXPECT_TRUE(s.sched->cancel(waiting));   // queued: plain dequeue
  EXPECT_FALSE(s.sched->cancel(waiting));  // already terminal
  EXPECT_TRUE(s.sched->cancel(running));   // running: releases both nodes
  EXPECT_EQ(s.sched->idle_nodes(), 2u);
  EXPECT_EQ(s.sched->live_count(), 0u);

  const auto record = Accounting::lookup(s.db, running);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kCancelled);
  EXPECT_EQ(record->reason, "qdel");
  EXPECT_GE(record->started, 0.0);                              // it did run
  EXPECT_LT(Accounting::lookup(s.db, waiting)->started, 0.0);   // it did not
}

TEST_F(SchedulerTest, UnschedulableJobsCancelIntoAccountingInsteadOfHanging) {
  // The retired PbsServer failure mode: every node vanishes with work
  // queued. drain() must terminate with the jobs accounted, not throw.
  Standalone s(2);
  s.sched->node_down(Standalone::host(0));
  s.sched->node_down(Standalone::host(1));
  const JobId id = s.sched->submit(user_job("doomed", 2, 10.0));
  s.sched->drain();
  const auto record = Accounting::lookup(s.db, id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kCancelled);
  EXPECT_EQ(record->reason, "unschedulable");
}

TEST_F(SchedulerTest, RejectsReinstallJobSpecs) {
  Standalone s(1);
  JobSpec spec = user_job("upgrade", 1, 0.0);
  spec.kind = JobKind::kReinstall;
  EXPECT_THROW(s.sched->submit(spec), StateError);
}

// --- policy ------------------------------------------------------------------

TEST_F(SchedulerTest, EasyBackfillStartsOnlyJobsThatCannotDelayTheHead) {
  Standalone s(5);
  s.sched->submit(user_job("wide", 3, 500.0));
  const JobId head = s.sched->submit(user_job("head", 5, 10.0));
  const JobId small = s.sched->submit(user_job("small", 1, 50.0));
  const JobId late = s.sched->submit(user_job("late", 1, 1000.0));
  s.sim.run_until(1.0);

  // wide runs on 3 of 5; the head (wants all 5) holds a shadow reservation
  // at t=500. small (ends at 50 <= 500) backfills; late (would run past the
  // shadow with no leftover nodes) must wait behind the head.
  EXPECT_EQ(s.sched->job(small)->state, JobState::kRunning);
  EXPECT_EQ(s.sched->job(late)->state, JobState::kQueued);
  EXPECT_EQ(s.sched->job(head)->state, JobState::kQueued);
  s.sched->drain();

  // The head started the instant wide freed its nodes — backfill never
  // moved it — and late went after the head.
  EXPECT_DOUBLE_EQ(Accounting::lookup(s.db, head)->started, 500.0);
  EXPECT_DOUBLE_EQ(Accounting::lookup(s.db, late)->started, 510.0);
  EXPECT_EQ(s.sched->stats().backfilled, 1u);
  EXPECT_EQ(Accounting::totals(s.db).completed, 4u);
}

TEST_F(SchedulerTest, StarvationBoundClosesTheBackfillValve) {
  SchedulerConfig config;
  config.starvation_bound = 30.0;
  Standalone s(2, config);
  s.sched->submit(user_job("long", 1, 100.0));
  const JobId head = s.sched->submit(user_job("head", 2, 10.0));
  std::vector<JobId> smalls;
  for (int i = 0; i < 5; ++i)
    smalls.push_back(s.sched->submit(user_job(strings::cat("s", i), 1, 20.0)));
  s.sched->drain();

  // Two smalls backfilled (head age 0 and 20); at age 40 the valve was
  // closed, so the idle node waited for the head instead of a third small.
  EXPECT_EQ(s.sched->stats().backfilled, 2u);
  EXPECT_DOUBLE_EQ(Accounting::lookup(s.db, head)->started, 100.0);
  EXPECT_GE(Accounting::lookup(s.db, smalls[2])->started, 110.0);
  EXPECT_EQ(Accounting::totals(s.db).completed, 7u);
}

TEST_F(SchedulerTest, ShrinkValveStartsMoldableHeadOnTheIdleSet) {
  SchedulerConfig config;
  config.shrink_after = 100.0;
  Standalone s(4, config);
  s.sched->submit(user_job("big", 2, 1000.0));
  const JobId head = s.sched->submit(user_job("moldable", 4, 50.0, /*min_nodes=*/2));
  s.sched->drain();

  // Only 2 nodes were ever free; after 100 s of head age the moldable job
  // started shrunk on them instead of blocking until t=1000.
  const auto record = Accounting::lookup(s.db, head);
  ASSERT_TRUE(record.has_value());
  EXPECT_DOUBLE_EQ(record->started, 100.0);
  EXPECT_EQ(record->nodes_used, 2u);
  EXPECT_EQ(s.sched->stats().shrunk, 1u);
}

// --- node churn --------------------------------------------------------------

TEST_F(SchedulerTest, NodeDownRequeuesWithBackoffThenBudgetExhausts) {
  Standalone s(2);
  const JobId id = s.sched->submit(user_job("fragile", 2, 100.0, 0, /*max_retries=*/1));
  s.sim.run_until(10.0);
  ASSERT_EQ(s.sched->job(id)->state, JobState::kRunning);

  s.sched->node_down(Standalone::host(0));
  EXPECT_EQ(s.sched->job(id)->state, JobState::kQueued);
  EXPECT_EQ(s.sched->job(id)->retries, 1);
  EXPECT_EQ(s.sched->node_life(Standalone::host(0)), NodeLife::kDown);
  s.sched->node_up(Standalone::host(0));

  // Attempt 1 waits exactly the backoff base (5 s): ineligible at 14.9,
  // restarted at 15.
  s.sim.run_until(14.9);
  EXPECT_EQ(s.sched->job(id)->state, JobState::kQueued);
  s.sim.run_until(16.0);
  ASSERT_EQ(s.sched->job(id)->state, JobState::kRunning);
  EXPECT_DOUBLE_EQ(s.sched->job(id)->started, 15.0);

  // Second loss: the budget (1 retry) is spent — terminal, exactly once.
  s.sched->node_down(Standalone::host(1));
  const auto record = Accounting::lookup(s.db, id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kCancelled);
  EXPECT_EQ(record->reason, "retry budget exhausted");
  EXPECT_EQ(record->retries, 1);
  EXPECT_EQ(s.sched->stats().requeued, 1u);
  EXPECT_EQ(Accounting::totals(s.db).duplicate_ids, 0u);
}

TEST_F(SchedulerTest, HealthGateParksReinstallWavesUntilTheClusterRecovers) {
  SchedulerConfig config;
  config.reinstall_wave = 2;
  config.min_healthy_fraction = 0.9;
  Standalone s(10, config);
  std::vector<std::string> reinstalled;
  SchedulerHooks hooks;
  hooks.reinstall = [&reinstalled](const std::string& host) {
    reinstalled.push_back(host);
  };
  s.sched->set_hooks(std::move(hooks));

  // 8/10 alive: below the 0.9 floor, so the request parks.
  s.sched->health_report(8, 10);
  s.sched->request_reinstall(Standalone::host(2));
  s.sched->request_reinstall(Standalone::host(3));
  s.sched->request_reinstall(Standalone::host(4));
  EXPECT_TRUE(reinstalled.empty());
  EXPECT_EQ(s.sched->node_life(Standalone::host(2)), NodeLife::kPendingReinstall);

  // Recovery opens the gate: a wave of 2 starts, the third stays parked.
  s.sched->health_report(10, 10);
  ASSERT_EQ(reinstalled.size(), 2u);
  EXPECT_EQ(s.sched->node_life(reinstalled[0]), NodeLife::kReinstalling);
  EXPECT_EQ(s.sched->node_life(Standalone::host(4)), NodeLife::kPendingReinstall);

  // A rejoin frees a wave slot for the parked node.
  s.sched->node_up(reinstalled[0]);
  ASSERT_EQ(reinstalled.size(), 3u);
  EXPECT_EQ(reinstalled[2], Standalone::host(4));
  EXPECT_EQ(s.sched->node_life(reinstalled[0]), NodeLife::kIdle);
  EXPECT_EQ(s.sched->stats().reinstalls_finished, 1u);
}

// --- durability --------------------------------------------------------------

TEST_F(SchedulerTest, CrashBetweenAccountingInsertAndDeleteRepairsExactlyOnce) {
  Standalone s(2);
  const JobId a = s.sched->submit(user_job("first", 1, 10.0));
  const JobId b = s.sched->submit(user_job("second", 1, 20.0));
  CrashPoints::instance().arm("sched.finish.between", 1);
  EXPECT_THROW(s.sched->drain(), CrashError);
  CrashPoints::instance().disarm_all();

  // The crash left job a's accounting row AND its live row on disk.
  s.db.wal_flush();
  vfs::FileSystem shadow;
  shadow.copy_tree(s.disk, kDir, kDir);
  netsim::Simulator sim2;
  Database recovered;
  recovered.open_durable(shadow, kDir);
  EXPECT_EQ(recovered.execute("SELECT id FROM sched_accounting").row_count(), 1u);
  EXPECT_EQ(recovered.execute("SELECT id FROM sched_jobs").row_count(), 2u);

  // Recovery repairs by finishing the delete — never by finishing twice.
  Scheduler sched2(recovered, sim2);
  EXPECT_EQ(sched2.stats().stale_rows_repaired, 1u);
  EXPECT_TRUE(Accounting::has(recovered, a));
  sched2.register_node(Standalone::host(0));
  sched2.register_node(Standalone::host(1));
  sched2.resume();
  sched2.drain();

  const AccountingTotals totals = Accounting::totals(recovered);
  EXPECT_EQ(totals.completed, 2u);
  EXPECT_EQ(totals.duplicate_ids, 0u);
  EXPECT_TRUE(Accounting::has(recovered, b));
  EXPECT_EQ(recovered.execute("SELECT id FROM sched_jobs").row_count(), 0u);
}

TEST_F(SchedulerTest, RecoveredQueueIsByteIdenticalAndResumesRunningJobs) {
  Standalone s(4);
  const JobId running = s.sched->submit(user_job("resident", 4, 120.0));
  std::vector<JobId> queued;
  for (int i = 0; i < 4; ++i)
    queued.push_back(s.sched->submit(user_job(strings::cat("q", i), 2, 30.0)));
  s.sim.run_until(50.0);
  ASSERT_EQ(s.sched->job(running)->state, JobState::kRunning);
  const double original_start = s.sched->job(running)->started;

  // The frontend "crashes" here: copy the disk and recover from scratch.
  s.db.wal_flush();
  vfs::FileSystem shadow;
  shadow.copy_tree(s.disk, kDir, kDir);
  Database recovered;
  recovered.open_durable(shadow, kDir);
  // Shadow replay: the recovered image reproduces the writer's state
  // byte-for-byte before any scheduler touches it.
  EXPECT_EQ(recovered.dump_state(), s.db.dump_state());

  netsim::Simulator sim2;
  sim2.run_until(50.0);  // the promoted frontend's clock does not rewind
  Scheduler sched2(recovered, sim2);
  EXPECT_EQ(sched2.live_count(), 5u);
  EXPECT_EQ(sched2.queued_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) sched2.register_node(Standalone::host(i));
  sched2.resume();
  // The running job was NOT restarted: same epoch start, no duplicate.
  EXPECT_EQ(sched2.job(running)->state, JobState::kRunning);
  EXPECT_DOUBLE_EQ(sched2.job(running)->started, original_start);
  EXPECT_EQ(sched2.stats().started, 0u);

  sched2.drain();
  const AccountingTotals totals = Accounting::totals(recovered);
  EXPECT_EQ(totals.completed, 5u);
  EXPECT_EQ(totals.duplicate_ids, 0u);
  // It finished at its original deadline, with its original start time.
  const auto record = Accounting::lookup(recovered, running);
  EXPECT_DOUBLE_EQ(record->started, original_start);
  EXPECT_DOUBLE_EQ(record->ended, 120.0);
  // New submissions continue the id sequence past everything recovered.
  EXPECT_GT(sched2.submit(user_job("after", 1, 1.0)), queued.back());
}

TEST_F(SchedulerTest, RecoveryRequeuesRunningJobsWhoseNodesDied) {
  Standalone s(2);
  const JobId id = s.sched->submit(user_job("victim", 2, 100.0));
  s.sim.run_until(10.0);
  ASSERT_EQ(s.sched->job(id)->state, JobState::kRunning);

  s.db.wal_flush();
  vfs::FileSystem shadow;
  shadow.copy_tree(s.disk, kDir, kDir);
  Database recovered;
  recovered.open_durable(shadow, kDir);
  netsim::Simulator sim2;
  Scheduler sched2(recovered, sim2);
  // One of the job's nodes did not survive the crash.
  sched2.register_node(Standalone::host(0));
  sched2.resume();
  EXPECT_EQ(sched2.job(id)->state, JobState::kQueued);
  EXPECT_EQ(sched2.job(id)->retries, 1);
  EXPECT_EQ(sched2.stats().requeued, 1u);

  // It reruns shrunk? No — want=2, one node: unschedulable until the node
  // rejoins; bring it back and the job completes exactly once.
  sched2.register_node(Standalone::host(1));
  sched2.kick();
  sched2.drain();
  const auto record = Accounting::lookup(recovered, id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kComplete);
  EXPECT_EQ(record->retries, 1);
  EXPECT_EQ(Accounting::totals(recovered).duplicate_ids, 0u);
}

// --- attached to a live cluster ----------------------------------------------

cluster::ClusterConfig small_cluster_config() {
  cluster::ClusterConfig config;
  config.synth.filler_packages = 20;
  return config;
}

struct Attached {
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<Scheduler> sched;

  explicit Attached(int nodes, SchedulerConfig config = {}) {
    cluster = std::make_unique<cluster::Cluster>(small_cluster_config());
    for (int i = 0; i < nodes; ++i) cluster->add_node();
    cluster->integrate_all();
    sched = std::make_unique<Scheduler>(cluster->frontend().db(), cluster->sim(),
                                        config);
    sched->attach(*cluster);
    sched->resume();
  }
};

TEST_F(SchedulerTest, AttachedJobsLaunchRealProcessesAndReinstallDrainsNotPreempts) {
  Attached a(4);
  const JobId id = a.sched->submit(user_job("mdrun", 2, 300.0));
  a.cluster->sim().run_until(a.cluster->sim().now() + 1.0);
  ASSERT_EQ(a.sched->job(id)->state, JobState::kRunning);
  const std::vector<std::string> hosts = a.sched->job(id)->assigned;
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(a.cluster->node(hosts[0])->process_count(), 1u);

  // Section 5: the upgrade "does not disturb any running applications" —
  // the reinstall request drains; the job keeps its node.
  a.sched->request_reinstall(hosts[0]);
  EXPECT_EQ(a.sched->node_life(hosts[0]), NodeLife::kDraining);
  EXPECT_EQ(a.sched->job(id)->state, JobState::kRunning);
  EXPECT_EQ(a.cluster->node(hosts[0])->process_count(), 1u);

  a.sched->drain();
  const auto record = Accounting::lookup(a.sched->db(), id);
  ASSERT_TRUE(record.has_value());
  EXPECT_DOUBLE_EQ(record->ended - record->started, 300.0);  // full walltime

  // The drain completed into a reinstall; the node comes back and rejoins.
  a.cluster->sim().run_until(a.cluster->sim().now() + 20000.0);
  EXPECT_EQ(a.cluster->node(hosts[0])->install_count(), 2);
  EXPECT_EQ(a.sched->node_life(hosts[0]), NodeLife::kIdle);
  EXPECT_EQ(a.sched->stats().drains_started, 1u);
  EXPECT_EQ(a.sched->stats().reinstalls_finished, 1u);

  // attach() registered its durable triggers exactly once.
  std::set<std::string> names;
  for (const auto& status : a.cluster->triggers().list()) names.insert(status.spec.name);
  EXPECT_TRUE(names.contains("sched-node-down"));
  EXPECT_TRUE(names.contains("sched-health-wave"));
}

TEST_F(SchedulerTest, ReinstallAllRunsInBoundedWaves) {
  SchedulerConfig config;
  config.reinstall_wave = 2;
  Attached a(4, config);
  a.sched->request_reinstall_all();
  std::size_t reinstalling = 0, pending = 0;
  for (cluster::Node* node : a.cluster->nodes()) {
    const auto life = a.sched->node_life(node->hostname());
    if (life == NodeLife::kReinstalling) ++reinstalling;
    if (life == NodeLife::kPendingReinstall) ++pending;
  }
  EXPECT_EQ(reinstalling, 2u);  // the wave cap holds
  EXPECT_EQ(pending, 2u);

  // Long enough for both waves; run_until alone would stop between waves.
  a.cluster->sim().run_until(a.cluster->sim().now() + 40000.0);
  for (cluster::Node* node : a.cluster->nodes()) {
    EXPECT_EQ(node->install_count(), 2) << node->hostname();
    EXPECT_EQ(a.sched->node_life(node->hostname()), NodeLife::kIdle);
  }
  EXPECT_EQ(a.sched->stats().reinstalls_started, 4u);
  EXPECT_EQ(a.sched->stats().reinstalls_finished, 4u);
  EXPECT_TRUE(a.cluster->consistent());
}

TEST_F(SchedulerTest, AttachedNodeDeathRequeuesThroughTheEventSpine) {
  Attached a(4);
  const JobId id = a.sched->submit(user_job("survivor", 2, 100.0));
  netsim::Simulator& sim = a.cluster->sim();
  sim.run_until(sim.now() + 1.0);
  ASSERT_EQ(a.sched->job(id)->state, JobState::kRunning);
  const std::string victim = a.sched->job(id)->assigned[0];

  // Power loss: kNodeState "off" reaches the scheduler via the bus and the
  // job requeues onto the surviving nodes.
  a.cluster->node(victim)->power_off();
  sim.run_until(sim.now() + 30.0);
  EXPECT_EQ(a.sched->node_life(victim), NodeLife::kDown);

  a.sched->drain();
  const auto record = Accounting::lookup(a.sched->db(), id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kComplete);
  EXPECT_EQ(record->retries, 1);
  EXPECT_EQ(a.sched->stats().requeued, 1u);
  // The rerun landed only on living nodes.
  for (const std::string& host : {victim})
    EXPECT_FALSE(a.cluster->node(host)->is_running());
  EXPECT_EQ(Accounting::totals(a.sched->db()).duplicate_ids, 0u);
}

TEST_F(SchedulerTest, JobsReportRendersForOperators) {
  Attached a(4);
  a.sched->submit(user_job("render", 2, 50.0));
  a.sched->drain();
  const std::string report = tools::ClusterTools::jobs_report(*a.sched);
  EXPECT_NE(report.find("batch queue:"), std::string::npos);
  EXPECT_NE(report.find("accounting: 1 completed"), std::string::npos);
  EXPECT_NE(report.find("render"), std::string::npos);
  EXPECT_NE(report.find("0 duplicate ids"), std::string::npos);
}

// --- chaos soak --------------------------------------------------------------

TEST_F(SchedulerTest, ChaosSoakSurvivesNodeKillsAndMidFinishCrashes) {
  // Random node kills during execution plus two frontend crashes landed
  // exactly between the accounting INSERT and the live-row DELETE. Every
  // job must end in the ledger exactly once, no matter what.
  constexpr std::size_t kNodes = 8;
  constexpr int kJobs = 60;
  Rng rng(0xC4A05);

  vfs::FileSystem disk;
  auto sim = std::make_unique<netsim::Simulator>();
  auto db = std::make_unique<Database>();
  db->open_durable(disk, kDir);
  auto sched = std::make_unique<Scheduler>(*db, *sim);
  for (std::size_t i = 0; i < kNodes; ++i) sched->register_node(Standalone::host(i));
  sched->resume();

  std::vector<JobSpec> specs;
  for (int i = 0; i < kJobs; ++i)
    specs.push_back(user_job(strings::cat("chaos", i),
                             1 + static_cast<std::size_t>(rng.next_below(3)),
                             5.0 + static_cast<double>(rng.next_below(45)),
                             0, /*max_retries=*/3));
  sched->submit_batch(specs);

  // Churn: every 7 simulated seconds, one random node dies and one random
  // node comes back.
  std::function<void()> churn = [&] {
    sched->node_down(Standalone::host(rng.next_below(kNodes)));
    sched->node_up(Standalone::host(rng.next_below(kNodes)));
    if (sched->live_count() > 0) sim->schedule(7.0, churn);
  };
  sim->schedule(7.0, churn);

  int crashes = 0;
  CrashPoints::instance().arm("sched.finish.between", 10);
  for (;;) {
    try {
      sched->drain();
      break;
    } catch (const CrashError&) {
      ++crashes;
      CrashPoints::instance().disarm_all();
      // Frontend restart: recover from the disk image, re-register every
      // node (operator revives the dead ones), resume, carry on.
      db->wal_flush();
      vfs::FileSystem next_disk;
      next_disk.copy_tree(disk, kDir, kDir);
      disk = std::move(next_disk);
      sched.reset();
      db = std::make_unique<Database>();
      db->open_durable(disk, kDir);
      sim = std::make_unique<netsim::Simulator>();
      sched = std::make_unique<Scheduler>(*db, *sim);
      for (std::size_t i = 0; i < kNodes; ++i) {
        sched->register_node(Standalone::host(i));
        sched->node_up(Standalone::host(i));
      }
      sched->resume();
      sim->schedule(7.0, churn);
      if (crashes == 1) CrashPoints::instance().arm("sched.finish.between", 10);
    }
  }
  EXPECT_EQ(crashes, 2);

  const AccountingTotals totals = Accounting::totals(*db);
  EXPECT_EQ(totals.completed + totals.cancelled, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(totals.duplicate_ids, 0u);
  for (JobId id = 1; id <= static_cast<JobId>(kJobs); ++id)
    EXPECT_TRUE(Accounting::has(*db, id)) << "job " << id << " missing from the ledger";
  EXPECT_EQ(sched->live_count(), 0u);
}

// --- concurrency (TSan) ------------------------------------------------------

TEST_F(SchedulerTest, ConcurrentObserversDuringSchedulingStayCoherent) {
  // The scheduler mutates its queue and the MVCC database on the simulator
  // thread while observer threads hammer qstat / totals / job lookups —
  // the cluster-status --jobs path against a live scheduler.
  Standalone s(4);
  std::vector<JobSpec> specs;
  for (int i = 0; i < 50; ++i)
    specs.push_back(user_job(strings::cat("par", i), 1 + (i % 3), 5.0 + i));
  s.sched->submit_batch(specs);

  std::atomic<bool> done{false};
  std::vector<std::thread> observers;
  for (int t = 0; t < 2; ++t)
    observers.emplace_back([&s, &done] {
      while (!done.load()) {
        (void)s.sched->qstat(8);
        (void)s.sched->running_count();
        (void)s.sched->job(1);
        (void)Accounting::totals(s.db).completed;
      }
    });
  s.sched->drain();
  done.store(true);
  for (auto& thread : observers) thread.join();

  const AccountingTotals totals = Accounting::totals(s.db);
  EXPECT_EQ(totals.completed, 50u);
  EXPECT_EQ(totals.duplicate_ids, 0u);
}

}  // namespace
}  // namespace rocks::batch
