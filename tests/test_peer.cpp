// Peer-assisted distribution and the incremental allocator (DESIGN.md §14).
//
// Two suites live here. AllocatorEquivalence is the correctness anchor for
// the netsim fast path: the incremental cap-class allocator must produce
// bit-identical completion times, kill refunds, and instantaneous rates to
// the retained O(n) reference across long randomized traces — not "close",
// identical, because both modes share the same arithmetic and differ only
// in bookkeeping. The Peer* suites cover the swarm itself: cascade/swarm
// convergence, the cooperative chunk cache, churn through the AbortCallback
// retry path, and a full-cluster chaos run where serving peers lose power
// mid-chunk.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "netsim/fault.hpp"
#include "netsim/flow.hpp"
#include "netsim/peer.hpp"
#include "netsim/topology.hpp"
#include "support/rng.hpp"
#include "tools/cluster_tools.hpp"

namespace rocks::netsim {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

// --- incremental vs reference allocator --------------------------------------

struct TraceResult {
  std::vector<std::pair<double, int>> completions;  // (sim time, flow tag)
  std::vector<std::pair<double, double>> kills;     // (sim time, delivered)
  std::vector<double> rate_samples;
  double total_delivered = 0.0;
  double end_time = 0.0;
};

/// Replays one pseudo-random join/leave/kill/set_capacity trace against a
/// fresh channel. The Rng is consumed identically for both allocators, so
/// the operation streams are the same by construction.
TraceResult run_trace(Allocator allocator, std::uint64_t seed, int ops) {
  Simulator sim;
  FairShareChannel channel(sim, 10.0 * kMB, allocator);
  Rng rng(seed);
  TraceResult out;
  std::vector<FlowId> flows;  // may contain already-finished ids: abort/kill
                              // of a stale id is a no-op in both modes
  int next_tag = 0;
  // A few repeated caps (the homogeneous fast path) plus uncapped.
  const double caps[] = {0.0, 1.0 * kMB, 1.0 * kMB, 2.5 * kMB};
  for (int i = 0; i < ops; ++i) {
    sim.run_until(sim.now() + rng.next_double() * 3.0);
    const auto roll = rng.next_below(100);
    if (roll < 55 || flows.empty()) {
      const double bytes = (0.5 + rng.next_double() * 30.0) * kMB;
      const double cap = caps[rng.next_below(4)];
      const int tag = next_tag++;
      flows.push_back(channel.start(
          bytes, cap, [tag, &out, &sim] { out.completions.emplace_back(sim.now(), tag); },
          [&out, &sim](double delivered) { out.kills.emplace_back(sim.now(), delivered); }));
    } else if (roll < 75) {
      const auto victim = rng.next_below(flows.size());
      channel.abort(flows[victim]);
      flows.erase(flows.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (roll < 90) {
      const auto victim = rng.next_below(flows.size());
      channel.kill(flows[victim]);
      flows.erase(flows.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      channel.set_capacity((5.0 + rng.next_double() * 10.0) * kMB);
    }
    if (!flows.empty()) out.rate_samples.push_back(channel.rate_of(flows[flows.size() / 2]));
  }
  sim.run();
  out.total_delivered = channel.total_delivered();
  out.end_time = sim.now();
  return out;
}

class AllocatorEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorEquivalence, TenThousandOpsBitIdentical) {
  const TraceResult fast = run_trace(Allocator::kIncremental, GetParam(), 10000);
  const TraceResult reference = run_trace(Allocator::kReference, GetParam(), 10000);
  // Completion times and order, kill instants and refunded byte counts, and
  // sampled instantaneous rates must match to the last bit.
  EXPECT_EQ(fast.completions, reference.completions);
  EXPECT_EQ(fast.kills, reference.kills);
  EXPECT_EQ(fast.rate_samples, reference.rate_samples);
  EXPECT_EQ(fast.end_time, reference.end_time);
  // Aggregate accounting sums in different orders (persistent vs rebuilt
  // class table), so it is near-equal, not bit-equal.
  EXPECT_NEAR(fast.total_delivered, reference.total_delivered,
              1e-6 * std::max(1.0, reference.total_delivered));
  EXPECT_FALSE(fast.completions.empty());
  EXPECT_FALSE(fast.kills.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorEquivalence,
                         ::testing::Values(0xA11C01ull, 0xB22D02ull, 0xC33E03ull));

// --- rack topology -----------------------------------------------------------

TEST(TopologyTest, PathChannelPicksLeafOrSourceUplink) {
  Simulator sim;
  TopologyConfig config;
  config.nodes_per_rack = 4;
  config.rack_capacity = 12.0 * kMB;
  config.uplink_capacity = 6.0 * kMB;
  RackTopology topology(sim, config);
  topology.ensure_endpoints(10);  // racks 0..2
  EXPECT_EQ(topology.rack_count(), 3u);
  EXPECT_EQ(topology.rack_of(3), 0u);
  EXPECT_EQ(topology.rack_of(4), 1u);
  EXPECT_TRUE(topology.same_rack(0, 3));
  EXPECT_FALSE(topology.same_rack(3, 4));
  // Same rack -> that rack's leaf; cross rack -> the SOURCE rack's uplink.
  EXPECT_EQ(&topology.path_channel(0, 3), &topology.rack_channel(0));
  EXPECT_EQ(&topology.path_channel(5, 1), &topology.uplink_channel(1));
  EXPECT_EQ(topology.path_channel(5, 1).capacity(), 6.0 * kMB);
  EXPECT_EQ(topology.seed_path_channel(9), &topology.uplink_channel(2));
}

// --- the swarm ---------------------------------------------------------------

InstallWaveParams wave_params(DistMode mode, std::size_t nodes) {
  InstallWaveParams params;
  params.nodes = nodes;
  params.payload_bytes = 225.0 * kMB;
  params.demand_cap = 1.0 * kMB;
  params.seed_capacity = 7.0 * kMB;
  params.peer.mode = mode;
  params.peer.seed_fanout = mode == DistMode::kSingleServer ? 0 : 8;
  params.topology.nodes_per_rack = 32;
  params.topology.rack_capacity = 12.0 * kMB;
  params.topology.uplink_capacity = 12.0 * kMB;
  return params;
}

TEST(PeerWave, SingleServerReproducesTableOneScaling) {
  // The paper baseline: N nodes share one 7 MB/s NIC, so the download phase
  // is N * payload / capacity once N * demand exceeds capacity.
  const auto result = run_install_wave(wave_params(DistMode::kSingleServer, 100));
  EXPECT_EQ(result.completed, 100u);
  const double expected = 110.0 + 100.0 * 225.0 / 7.0 + 165.0;
  EXPECT_NEAR(result.makespan, expected, 2.0);
  EXPECT_EQ(result.peer_stats.peer_serves, 0u);
  EXPECT_EQ(result.peer_stats.seed_serves, 100u);
}

TEST(PeerWave, CascadeBreaksTheLinearCurve) {
  const auto baseline = run_install_wave(wave_params(DistMode::kSingleServer, 200));
  const auto cascade = run_install_wave(wave_params(DistMode::kCascade, 200));
  EXPECT_EQ(cascade.completed, 200u);
  EXPECT_GT(cascade.peer_stats.peer_serves, 100u);  // most installs peer-fed
  EXPECT_LT(cascade.makespan, baseline.makespan / 2.5);
}

TEST(PeerWave, SwarmPipelinesBetterThanCascade) {
  const auto cascade = run_install_wave(wave_params(DistMode::kCascade, 320));
  const auto swarm = run_install_wave(wave_params(DistMode::kSwarm, 320));
  EXPECT_EQ(swarm.completed, 320u);
  EXPECT_LT(swarm.makespan, cascade.makespan);
  // Rack-aware selection keeps most peer traffic off the uplinks.
  EXPECT_GT(swarm.peer_stats.rack_local_serves, swarm.peer_stats.cross_rack_serves);
}

TEST(PeerWave, SwarmScalesNearFlat) {
  // Table I's curve is linear in N (8x the nodes -> ~8x the makespan); the
  // swarm's must grow like the cascade depth instead.
  const auto small = run_install_wave(wave_params(DistMode::kSwarm, 128));
  const auto large = run_install_wave(wave_params(DistMode::kSwarm, 1024));
  EXPECT_EQ(large.completed, 1024u);
  EXPECT_LT(large.makespan, 2.5 * small.makespan);
}

// --- chunk cache + churn -----------------------------------------------------

struct PeerRig {
  Simulator sim;
  HttpServerGroup seed{sim, 7.0 * kMB, 1};
  RackTopology topology;
  PeerDistribution peers;

  explicit PeerRig(PeerConfig config, std::size_t endpoints = 8)
      : topology(sim,
                 TopologyConfig{/*nodes_per_rack=*/4, /*rack_capacity=*/12.0 * kMB,
                                /*uplink_capacity=*/12.0 * kMB, Allocator::kIncremental}),
        peers(sim, topology, seed, config) {
    peers.register_endpoints(static_cast<std::uint32_t>(endpoints));
  }
};

PeerConfig swarm_config() {
  PeerConfig config;
  config.mode = DistMode::kSwarm;
  config.chunk_count = 8;
  config.seed_fanout = 2;
  return config;
}

TEST(PeerDistributionTest, FetchFallsBackToSeedWhenNoPeersExist) {
  PeerRig rig(swarm_config());
  bool done = false;
  rig.peers.begin_install(0);
  rig.peers.fetch(0, 80.0 * kMB, 1.0 * kMB, [&] { done = true; });
  rig.sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(rig.peers.is_seeded(0));
  EXPECT_EQ(rig.peers.stats().seed_serves, 8u);  // every chunk from the seed
  EXPECT_EQ(rig.peers.stats().peer_serves, 0u);
  EXPECT_NEAR(rig.sim.now(), 80.0, 0.1);  // demand-capped at 1 MB/s
}

TEST(PeerDistributionTest, ChunkCacheSurvivesSourceChurn) {
  PeerRig rig(swarm_config());
  rig.peers.mark_seeded(0);  // endpoint 0 serves rack 0
  double aborted_with = -1.0;
  bool done = false;
  rig.peers.begin_install(1);
  rig.peers.fetch(
      1, 80.0 * kMB, 1.0 * kMB, [&] { done = true; },
      [&](double delivered) { aborted_with = delivered; });
  // 10 MB chunks at 1 MB/s: kill the source 35 s in — endpoint 1 holds 3
  // whole chunks plus half of the fourth.
  rig.sim.run_until(35.0);
  rig.peers.node_offline(0);
  EXPECT_EQ(rig.peers.stats().churn_aborts, 1u);
  EXPECT_NEAR(aborted_with, 35.0 * kMB, 0.1 * kMB);  // cache + partial chunk
  EXPECT_NEAR(rig.peers.cached_bytes(1), 30.0 * kMB, 1e-6);  // whole chunks only
  EXPECT_FALSE(done);
  // The retry resumes from the cache: only the missing 50 MB move again
  // (the half-fetched chunk is re-fetched — whole chunks are the cache unit).
  rig.peers.fetch(1, 80.0 * kMB, 1.0 * kMB, [&] { done = true; });
  rig.sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(rig.peers.is_seeded(1));
  EXPECT_NEAR(rig.sim.now(), 35.0 + 50.0, 0.5);
  EXPECT_EQ(rig.peers.stats().seed_serves, 5u);  // chunks 3..7 from the seed
}

TEST(PeerDistributionTest, OfflineInstallerReleasesItsSourceSlot) {
  PeerConfig config = swarm_config();
  config.max_upload_streams = 1;
  config.seed_fanout = 1;
  PeerRig rig(config);
  rig.peers.mark_seeded(0);
  bool done1 = false;
  bool done2 = false;
  bool done3 = false;
  for (std::uint32_t e : {1u, 2u, 3u}) rig.peers.begin_install(e);
  rig.peers.fetch(1, 40.0 * kMB, 1.0 * kMB, [&] { done1 = true; });
  rig.peers.fetch(2, 40.0 * kMB, 1.0 * kMB, [&] { done2 = true; });
  // With one upload slot (taken by 1) and one seed slot (taken by 2), the
  // third installer must park. Its retry path refetches after churn.
  auto refetch = std::make_shared<std::function<void(double)>>();
  *refetch = [&, refetch](double) {
    rig.sim.schedule(1.0, [&, refetch] {
      if (!rig.peers.is_seeded(3))
        rig.peers.fetch(3, 40.0 * kMB, 1.0 * kMB, [&] { done3 = true; }, *refetch);
    });
  };
  rig.peers.fetch(3, 40.0 * kMB, 1.0 * kMB, [&] { done3 = true; }, *refetch);
  EXPECT_GT(rig.peers.stats().waits, 0u);
  rig.sim.run_until(10.0);
  // An installer holding peer 0's only upload slot dies mid-chunk: the slot
  // must free up so the parked installer can be woken onto it.
  rig.peers.node_offline(1);
  rig.sim.run();
  EXPECT_FALSE(done1);
  EXPECT_TRUE(done2);
  EXPECT_TRUE(done3);
  EXPECT_TRUE(rig.peers.is_seeded(2));
  EXPECT_TRUE(rig.peers.is_seeded(3));
}

}  // namespace
}  // namespace rocks::netsim

// --- full-cluster chaos ------------------------------------------------------

namespace rocks::cluster {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

ClusterConfig peer_cluster_config() {
  ClusterConfig config;
  config.synth.filler_packages = 50;
  config.enable_peer_distribution = true;
  config.peer.mode = netsim::DistMode::kSwarm;
  config.peer.chunk_count = 8;
  config.peer.seed_fanout = 2;  // force real peer traffic even at 8 nodes
  config.topology.nodes_per_rack = 4;
  config.topology.rack_capacity = 12.0 * kMB;
  config.topology.uplink_capacity = 12.0 * kMB;
  return config;
}

TEST(PeerClusterTest, SwarmReinstallConvergesAndUsesPeers) {
  Cluster cluster(peer_cluster_config());
  for (int i = 0; i < 8; ++i) cluster.add_node();
  cluster.integrate_all();
  ASSERT_NE(cluster.peers(), nullptr);
  cluster.peers()->reset_stats();
  cluster.reinstall_all();
  for (Node* node : cluster.nodes()) {
    EXPECT_TRUE(node->is_running()) << node->hostname();
    EXPECT_EQ(node->install_count(), 2) << node->hostname();
  }
  EXPECT_TRUE(cluster.consistent());
  // With the seed fanned out at 2, most chunks must have come from peers.
  const netsim::PeerStats& stats = cluster.peers()->stats();
  EXPECT_GT(stats.peer_serves, stats.seed_serves);
  tools::ClusterTools tools(cluster);
  const std::string report = tools.peer_distribution_report();
  EXPECT_NE(report.find("peer distribution (swarm)"), std::string::npos);
  EXPECT_NE(report.find("rack-local"), std::string::npos);
}

TEST(PeerClusterTest, ServingPeersDyingMidChunkStillConverge) {
  // The chaos case ISSUE.md names: swarm peers lose power while sourcing
  // chunks; their receivers ride the AbortCallback retry path and the whole
  // reinstall still converges to a consistent cluster.
  Cluster cluster(peer_cluster_config());
  for (int i = 0; i < 8; ++i) cluster.add_node();
  cluster.integrate_all();
  cluster.peers()->reset_stats();
  netsim::FaultPlan plan;
  // Downloads start ~115 s after the shoot; the early fetchers (the ones
  // serving everyone else) lose power mid-transfer, twice.
  plan.power_flaps = {{200.0, 0, 30.0}, {230.0, 1, 30.0}};
  cluster.arm_faults(plan);
  cluster.reinstall_all();
  cluster.disarm_faults();
  for (Node* node : cluster.nodes()) {
    EXPECT_TRUE(node->is_running()) << node->hostname();
    EXPECT_GE(node->install_count(), 2) << node->hostname();
  }
  EXPECT_TRUE(cluster.consistent());
  EXPECT_GT(cluster.peers()->stats().churn_aborts, 0u);
}

TEST(PeerClusterTest, DisabledPeerDistributionKeepsLegacyPathAndReport) {
  ClusterConfig config;
  config.synth.filler_packages = 50;
  Cluster cluster(config);
  cluster.add_node();
  cluster.integrate_all();
  EXPECT_EQ(cluster.peers(), nullptr);
  Node* node = cluster.node("compute-0-0");
  node->shoot();
  cluster.run_until_stable();
  // Table I single-node calibration must be untouched by the peer plumbing.
  EXPECT_NEAR(node->last_install_duration(), 618.0, 5.0);
  tools::ClusterTools tools(cluster);
  EXPECT_NE(tools.peer_distribution_report().find("disabled"), std::string::npos);
}

}  // namespace
}  // namespace rocks::cluster
