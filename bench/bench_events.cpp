// The event spine's two scaling claims (DESIGN.md §15):
//
//   1. Trigger dispatch is cheap enough to sit on every publish path: the
//      engine matches, accounts durably (a SQL row mutation per firing), and
//      dispatches in single-digit microseconds per event.
//   2. Health convergence is O(depth), not O(n): a 100k-node aggregation
//      tree at 32/32 (3125 leaves -> 98 -> 4 -> 1, depth 4) moves any
//      disturbance to the root in <= depth+1 rollup rounds, and an idle
//      100k-node cluster rolls up in O(1) work per round.
//
// Both are asserted, not just printed — a regression exits nonzero.
//
//   bench_events [--json <file>]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "events/aggregator.hpp"
#include "events/bus.hpp"
#include "events/trigger.hpp"
#include "sqldb/engine.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace rocks;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TriggerLatency {
  double ns_per_matched = 0.0;    // publish -> action ran, accounting persisted
  double ns_per_unmatched = 0.0;  // publish -> filtered (the common case)
  std::uint64_t firings = 0;
};

TriggerLatency measure_trigger_latency() {
  constexpr std::size_t kEvents = 20000;
  sqldb::Database db;
  events::EventBus bus;
  events::TriggerEngine engine(db, bus);
  std::uint64_t actions = 0;
  engine.register_action("count",
                         [&actions](const events::Event&, const std::string&) { ++actions; });
  events::TriggerSpec spec;
  spec.name = "down-any";
  spec.event = events::EventType::kNodeDown;
  spec.action = "count";
  engine.add(spec);

  TriggerLatency out;
  double start = now_seconds();
  for (std::size_t i = 0; i < kEvents; ++i)
    bus.publish({events::EventType::kNodeDown, strings::cat("compute-0-", i % 64), "silent",
                 0.0, static_cast<double>(i), 0});
  out.ns_per_matched = (now_seconds() - start) * 1e9 / kEvents;

  start = now_seconds();
  for (std::size_t i = 0; i < kEvents; ++i)
    bus.publish({events::EventType::kNodeUp, strings::cat("compute-0-", i % 64), "", 0.0,
                 static_cast<double>(i), 0});
  out.ns_per_unmatched = (now_seconds() - start) * 1e9 / kEvents;

  out.firings = engine.firings();
  if (out.firings != kEvents || actions != kEvents) {
    std::fprintf(stderr, "bench_events: trigger lost events (%llu firings, %llu actions)\n",
                 static_cast<unsigned long long>(out.firings),
                 static_cast<unsigned long long>(actions));
    std::exit(1);
  }
  return out;
}

struct Convergence {
  std::size_t nodes = 0;
  std::size_t depth = 0;
  std::size_t cold_rounds = 0;    // everyone's first heartbeat -> root
  std::size_t kill_rounds = 0;    // 32 deaths -> root
  std::uint64_t kill_work = 0;    // tree-node recomputations for the kill
  std::uint64_t idle_work = 0;    // work per round on a quiet cluster
  double wall_seconds = 0.0;
};

Convergence measure_convergence(std::size_t nodes) {
  Convergence out;
  out.nodes = nodes;
  events::AggregatorConfig config;  // 32/32, dead_after 30s
  events::HealthAggregator tree(config);
  const double start = now_seconds();
  tree.register_endpoints(nodes);
  out.depth = tree.depth();

  // Cold start: every endpoint beats once, the root must learn all-alive.
  for (std::size_t i = 0; i < nodes; ++i) tree.heartbeat(i, 0.0);
  out.cold_rounds = tree.converge(0.0);
  if (tree.root().alive != nodes) {
    std::fprintf(stderr, "bench_events: root lost nodes (%zu of %zu alive)\n",
                 tree.root().alive, nodes);
    std::exit(1);
  }

  // Steady state: refresh every heartbeat, converge, then measure the idle
  // round — a quiet cluster must not pay O(n) per sweep.
  for (std::size_t i = 0; i < nodes; ++i) tree.heartbeat(i, 20.0);
  tree.converge(20.0);
  const std::uint64_t before_idle = tree.rollup_work();
  (void)tree.rollup_round(21.0);
  out.idle_work = tree.rollup_work() - before_idle;

  // Chaos: 32 nodes across different racks fall silent past dead_after while
  // the rest keep beating. The deaths must reach the root in O(depth).
  const std::size_t stride = nodes / 32;
  for (std::size_t i = 0; i < nodes; ++i)
    if (i % stride != 0 || i / stride >= 32) tree.heartbeat(i, 55.0);
  const std::uint64_t before_kill = tree.rollup_work();
  out.kill_rounds = tree.converge(56.0);
  out.kill_work = tree.rollup_work() - before_kill;
  if (tree.root().dead() != 32) {
    std::fprintf(stderr, "bench_events: expected 32 dead at the root, got %zu\n",
                 tree.root().dead());
    std::exit(1);
  }
  out.wall_seconds = now_seconds() - start;

  // The O(depth) claim itself.
  if (out.cold_rounds > out.depth + 1 || out.kill_rounds > out.depth + 1) {
    std::fprintf(stderr, "bench_events: convergence took %zu/%zu rounds at depth %zu\n",
                 out.cold_rounds, out.kill_rounds, out.depth);
    std::exit(1);
  }
  return out;
}

void write_json(const std::string& path, const TriggerLatency& latency,
                const Convergence* curves, std::size_t count) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_events: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"benchmark\": \"bench_events\",\n");
  std::fprintf(out,
               "  \"trigger\": {\"ns_per_matched_event\": %.0f, "
               "\"ns_per_unmatched_event\": %.0f, \"firings\": %llu},\n",
               latency.ns_per_matched, latency.ns_per_unmatched,
               static_cast<unsigned long long>(latency.firings));
  std::fprintf(out, "  \"convergence\": [\n");
  for (std::size_t i = 0; i < count; ++i) {
    const Convergence& c = curves[i];
    std::fprintf(out,
                 "    {\"nodes\": %zu, \"depth\": %zu, \"cold_rounds\": %zu, "
                 "\"kill32_rounds\": %zu, \"kill32_work\": %llu, \"idle_round_work\": %llu, "
                 "\"wall_seconds\": %.4f}%s\n",
                 c.nodes, c.depth, c.cold_rounds, c.kill_rounds,
                 static_cast<unsigned long long>(c.kill_work),
                 static_cast<unsigned long long>(c.idle_work), c.wall_seconds,
                 i + 1 < count ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("json written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  std::printf("\n================================================================\n"
              "bench_events\n  event spine: trigger dispatch latency + O(depth) health "
              "convergence\n"
              "================================================================\n");

  const TriggerLatency latency = measure_trigger_latency();
  std::printf("trigger dispatch: %.0f ns/event matched (action + durable accounting), "
              "%.0f ns/event filtered\n",
              latency.ns_per_matched, latency.ns_per_unmatched);

  const std::size_t scales[] = {1000, 10000, 100000};
  Convergence curves[3];
  AsciiTable table({"Nodes", "Depth", "Cold rounds", "Kill-32 rounds", "Kill-32 work",
                    "Idle work", "Wall (s)"});
  for (std::size_t i = 0; i < 3; ++i) {
    curves[i] = measure_convergence(scales[i]);
    const Convergence& c = curves[i];
    table.add_row({std::to_string(c.nodes), std::to_string(c.depth),
                   std::to_string(c.cold_rounds), std::to_string(c.kill_rounds),
                   std::to_string(c.kill_work), std::to_string(c.idle_work),
                   fixed(c.wall_seconds, 3)});
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nconvergence rounds track tree depth (%zu at 100k), not node count —\n"
      "the flat-scan monitor this replaces was O(n) per query. An idle round\n"
      "costs %llu node visits at 100k nodes; killing 32 nodes costs %llu,\n"
      "proportional to the disturbed subtrees.\n",
      curves[2].depth, static_cast<unsigned long long>(curves[2].idle_work),
      static_cast<unsigned long long>(curves[2].kill_work));
  if (!json_path.empty()) write_json(json_path, latency, curves, 3);
  return 0;
}
