// Section 6.3: "Another method is to replicate the web server and use HTTP
// load balancing ... By deploying N web servers, one can support N times
// the number of concurrent full-speed reinstallations that a single web
// server can support."
//
// A 32-node reinstall pulse against 1, 2, and 4 load-balanced replicas of
// the paper's 7 MB/s server.
#include <cstdio>

#include "bench_common.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;

int main() {
  print_header("bench_multiserver", "Section 6.3 (replicated install servers)");

  constexpr std::size_t kNodes = 32;
  AsciiTable table({"Web servers", "Aggregate (MB/s)", "32-node reinstall (min)",
                    "Full-speed capacity"});
  for (std::size_t replicas : {1u, 2u, 4u}) {
    auto cluster = make_cluster(kNodes, kPaperModel, replicas);
    const double minutes = cluster->reinstall_all() / 60.0;
    table.add_row({std::to_string(replicas),
                   fixed(replicas * kPaperModel.aggregate_Bps / kMB, 1), fixed(minutes, 1),
                   std::to_string(replicas * 7) + " nodes"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nN replicas -> N x the concurrent full-speed reinstalls; with 4 x 7 MB/s\n"
              "a 32-node pulse runs effectively uncontended.\n");
  return 0;
}
