// Figure 1 / Section 6.4: integration scaling. insert-ethers integrates
// nodes sequentially (to bind rack/rank physical positions); this measures
// wall-clock to bring up clusters of growing size from bare metal,
// including every DHCP retry, kickstart generation, download, and service
// regeneration — plus the per-insert service restart count (each insert
// rewrites dhcpd.conf, /etc/hosts, and the PBS nodes file).
#include <cstdio>

#include "bench_common.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;

int main() {
  print_header("bench_insert_ethers", "Section 6.4 (automatic node integration)");

  AsciiTable table({"Nodes", "Integration makespan (min)", "Service restarts",
                    "DHCP discovers", "Kickstarts served"});
  for (std::size_t n : {1u, 4u, 8u, 16u, 32u}) {
    cluster::ClusterConfig config;
    config.synth.filler_packages = 60;
    config.frontend.http_capacity = kPhysical.aggregate_Bps;
    config.frontend.http_per_stream_cap = kPhysical.per_stream_Bps;
    cluster::Cluster cluster(std::move(config));
    for (std::size_t i = 0; i < n; ++i) cluster.add_node();
    const double start = cluster.sim().now();
    cluster.integrate_all();
    const double minutes = (cluster.sim().now() - start) / 60.0;
    table.add_row({std::to_string(n), fixed(minutes, 1),
                   std::to_string(cluster.frontend().services().total_restarts()),
                   std::to_string(cluster.frontend().dhcp().discover_count()),
                   std::to_string(cluster.frontend().kickstart_server().requests_served())});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\neach insertion is O(1) administrator effort: boot the node, insert-ethers\n"
              "does the rest (name, IP, database row, dhcpd/hosts/PBS regeneration).\n");

  // Ablation (paper footnote to Section 6.4): "The serial nature of this
  // procedure is only required when installing nodes [to bind physical
  // positions]. This procedure can be executed in parallel if a node's
  // physical location is unimportant."
  AsciiTable ablation({"Boot discipline", "16-node makespan (min)", "rack/rank meaningful"});
  for (const double stagger : {20.0, 0.0}) {
    cluster::ClusterConfig config;
    config.synth.filler_packages = 60;
    config.frontend.http_capacity = kPhysical.aggregate_Bps;
    config.frontend.http_per_stream_cap = kPhysical.per_stream_Bps;
    config.integration_stagger = stagger;
    cluster::Cluster cluster(std::move(config));
    for (int i = 0; i < 16; ++i) cluster.add_node();
    cluster.integrate_all();
    ablation.add_row({stagger > 0 ? "sequential (crash-cart order)" : "parallel (all at once)",
                      fixed(cluster.sim().now() / 60.0, 1), stagger > 0 ? "yes" : "no"});
  }
  std::printf("\n%s", ablation.render().c_str());
  std::printf("\nparallel integration saves the per-node stagger but surrenders the\n"
              "hostname <-> physical-position binding.\n");
  return 0;
}
