// Install-time degradation under injected faults.
//
// The paper's recovery story (Section 4: power cycle, then crash cart; the
// footnote: a hard power cycle forces a reinstall) is qualitative. This
// harness quantifies the robustness margin of the hardened install pipeline:
// how much does a 16-node reinstall pulse slow down as DHCP broadcast loss
// rises, and what does a mid-pulse install-server crash or a burst of
// connection resets cost? Deterministic: same seed, same numbers.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "netsim/fault.hpp"
#include "support/table.hpp"

namespace {

using namespace rocks;
using namespace rocks::bench;

constexpr std::size_t kNodes = 16;

struct PulseResult {
  double makespan_min = 0.0;
  std::uint64_t discovers_dropped = 0;
  std::uint64_t flows_killed = 0;
  std::uint64_t download_retries = 0;
};

PulseResult faulted_pulse(const netsim::FaultPlan& plan, std::size_t http_servers = 2) {
  auto cluster = make_cluster(kNodes, kPaperModel, http_servers);
  auto& faults = cluster->arm_faults(plan);
  const double start = cluster->sim().now();
  for (auto* node : cluster->nodes()) node->shoot();
  cluster->run_until_stable();

  PulseResult result;
  result.makespan_min = (cluster->sim().now() - start) / 60.0;
  result.discovers_dropped = faults.stats().discovers_dropped;
  result.flows_killed = faults.stats().flows_killed;
  for (auto* node : cluster->nodes()) result.download_retries += node->download_retries();
  return result;
}

}  // namespace

int main() {
  print_header("bench_fault_recovery", "install-time degradation vs injected fault rate");

  // --- DHCP broadcast loss sweep -------------------------------------------
  std::printf("16-node reinstall pulse, 2 install servers, paper-model calibration.\n\n");
  AsciiTable loss_table({"DHCP loss", "Makespan (min)", "DISCOVERs dropped"});
  for (const double loss : {0.0, 0.1, 0.2, 0.4}) {
    netsim::FaultPlan plan;
    plan.dhcp_loss = loss;
    const PulseResult r = faulted_pulse(plan);
    loss_table.add_row({fixed(loss * 100.0, 0) + "%", fixed(r.makespan_min, 1),
                        std::to_string(r.discovers_dropped)});
  }
  std::printf("%s\n", loss_table.render().c_str());

  // --- service faults mid-pulse ---------------------------------------------
  AsciiTable fault_table(
      {"Scenario", "Makespan (min)", "Flows killed", "Download retries"});

  const PulseResult clean = faulted_pulse({});
  fault_table.add_row({"no faults", fixed(clean.makespan_min, 1), "0", "0"});

  netsim::FaultPlan crash;
  crash.http_crashes = {{250.0, 0, 180.0}};  // one of two replicas, down 3 min
  const PulseResult crashed = faulted_pulse(crash);
  fault_table.add_row({"replica crash (3 min)", fixed(crashed.makespan_min, 1),
                       std::to_string(crashed.flows_killed),
                       std::to_string(crashed.download_retries)});

  netsim::FaultPlan resets;
  resets.flow_kills = {{200.0, 0}, {260.0, 1}, {320.0, 0}, {380.0, 1}};
  const PulseResult reset = faulted_pulse(resets);
  fault_table.add_row({"4 connection resets", fixed(reset.makespan_min, 1),
                       std::to_string(reset.flows_killed),
                       std::to_string(reset.download_retries)});

  netsim::FaultPlan storm;
  storm.dhcp_loss = 0.25;
  storm.http_crashes = {{250.0, 0, 180.0}};
  storm.flow_kills = {{300.0, 1}, {340.0, 1}};
  const PulseResult stormed = faulted_pulse(storm);
  fault_table.add_row({"chaos soak (all of it)", fixed(stormed.makespan_min, 1),
                       std::to_string(stormed.flows_killed),
                       std::to_string(stormed.download_retries)});

  std::printf("%s\n", fault_table.render().c_str());
  std::printf(
      "Shape check: loss below ~20%% costs only retry latency (seconds); the\n"
      "replica crash costs roughly its outage plus resumed-download time, not a\n"
      "from-scratch reinstall; every scenario converges with identical\n"
      "fingerprints on all %zu nodes.\n",
      kNodes);
  return 0;
}
