// Section 5: "We have employed one unscalable service, the Network File
// System (NFS). The frontend node exports all user home directories to
// compute nodes via NFS. We are searching for an alternative that is
// scalable..."
//
// This ablation quantifies the complaint: the frontend's NFS service is a
// single fair-shared channel (bounded by disk and NIC); per-node home
// directory bandwidth collapses as 1/N, while every *scalable* service the
// paper keeps (HTTP install traffic, DHCP, NIS) either replicates or is
// touched only at install time.
#include <cstdio>

#include "bench_common.hpp"
#include "netsim/engine.hpp"
#include "netsim/flow.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;

int main() {
  print_header("bench_nfs_scaling", "Section 5 (the one unscalable service)");

  // The frontend's NFS path: a dual-PIII with one 100 Mbit NIC; sustained
  // NFS service tops out near the same 7.5 MB/s the HTTP path measured.
  const double nfs_capacity = 7.5 * kMB;
  // Each compute job wants ~1.5 MB/s of home-directory I/O (input decks,
  // checkpoint dribble).
  const double per_node_demand = 1.5 * kMB;

  AsciiTable table({"Compute nodes", "Per-node NFS rate (MB/s)", "% of demand",
                    "Job slowdown vs I/O model"});
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    netsim::Simulator sim;
    netsim::FairShareChannel nfs(sim, nfs_capacity);
    std::vector<netsim::FlowId> flows;
    for (std::size_t i = 0; i < n; ++i)
      flows.push_back(nfs.start(1e12, per_node_demand, nullptr));
    const double rate = nfs.rate_of(flows[0]);
    const double fraction = rate / per_node_demand;
    // A job that is 20% I/O-bound stretches by the I/O slowdown share.
    const double io_share = 0.2;
    const double slowdown = (1.0 - io_share) + io_share / fraction;
    table.add_row({std::to_string(n), fixed(rate / kMB, 2),
                   fixed(fraction * 100.0, 0) + "%", fixed(slowdown, 2) + "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nhome-directory bandwidth collapses as 1/N past %d nodes; a job that is\n"
      "20%% I/O-bound runs ~6x slower at 128 nodes. This is why the paper calls\n"
      "NFS its one unscalable service and keeps everything else on HTTP, DHCP,\n"
      "and NIS. (Install traffic avoids the trap: it is pushed once per\n"
      "reinstall, not on every boot or every job.)\n",
      static_cast<int>(nfs_capacity / per_node_demand));
  return 0;
}
