// Change-propagation micro-benchmarks (google-benchmark): what one node
// registration costs the frontend's generated configuration, full-render
// versus incremental (DESIGN.md §10). The paper's insert-ethers "rebuilds
// service-specific configuration files" after every discovery — a full
// rebuild is O(cluster), so at 10,000 nodes each of 10,000 registrations
// re-renders 10,000 lines. The change journal turns that into O(change):
// the numbers here back the EXPERIMENTS.md incremental-vs-full table, and
// the fixture aborts if the two paths ever diverge byte-wise.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "kickstart/server.hpp"
#include "services/generators.hpp"
#include "services/manager.hpp"
#include "support/strings.hpp"

namespace {

using namespace rocks;
using strings::cat;

const Ipv4 kFrontendIp(10, 1, 1, 1);
const char* const kFiles[] = {"/etc/hosts", "/etc/dhcpd.conf",
                              "/var/spool/pbs/server_priv/nodes"};

/// One database driving two service managers: `full` re-renders whole files
/// from scratch, `inc` applies journal deltas through IncrementalReports.
/// Both are attached to the same bus and must produce identical bytes.
struct Propagation {
  explicit Propagation(int nodes) {
    kickstart::ensure_cluster_schema(db);
    kickstart::insert_node_row(db, "00:30:c1:d8:ac:80", "frontend-0", 1, 0, 0, "10.1.1.1",
                               "i386", "Gateway machine");
    for (int i = 0; i < nodes; ++i) add_node();

    full.register_service("hosts", kFiles[0], services::generate_hosts, {"nodes"});
    full.register_service("dhcpd", kFiles[1],
                          [](sqldb::Database& d) {
                            return services::generate_dhcpd_conf(d, kFrontendIp);
                          },
                          {"nodes"});
    full.register_service("pbs", kFiles[2],
                          [](sqldb::Database& d) { return services::generate_pbs_nodes(d); },
                          {"nodes", "memberships"});
    full.attach(db.journal());

    const auto hosts =
        std::make_shared<services::IncrementalReport>(services::hosts_report_spec());
    inc.register_service("hosts", kFiles[0],
                         [hosts](sqldb::Database& d) { return hosts->render(d); }, {"nodes"});
    const auto dhcpd = std::make_shared<services::IncrementalReport>(
        services::dhcpd_report_spec(kFrontendIp));
    inc.register_service("dhcpd", kFiles[1],
                         [dhcpd](sqldb::Database& d) { return dhcpd->render(d); }, {"nodes"});
    const auto pbs =
        std::make_shared<services::IncrementalReport>(services::pbs_nodes_report_spec());
    inc.register_service("pbs", kFiles[2],
                         [pbs](sqldb::Database& d) { return pbs->render(d); },
                         {"nodes", "memberships"});
    inc.attach(db.journal());

    flush_both();
    // Exercise both directions of the delta path before measuring anything.
    add_node();
    flush_both();
    remove_last_node();
    flush_both();
  }

  void add_node() {
    kickstart::insert_node_row(
        db, Mac(0x00508B000000ULL + static_cast<std::uint64_t>(serial)).to_string(),
        cat("compute-0-", serial), 2, 0, serial,
        Ipv4(Ipv4(10, 255, 255, 254).value() - static_cast<std::uint32_t>(serial)).to_string());
    ++serial;
  }

  void remove_last_node() {
    --serial;
    // The mac column is indexed, so the delete itself is O(log N).
    db.execute(cat("DELETE FROM nodes WHERE mac = '",
                   Mac(0x00508B000000ULL + static_cast<std::uint64_t>(serial)).to_string(),
                   "'"));
  }

  void flush_both() {
    (void)full.regenerate(db, fs_full);
    (void)inc.regenerate(db, fs_inc);
    check_identical();
  }

  void check_identical() const {
    for (const char* path : kFiles) {
      if (fs_full.read_file(path) == fs_inc.read_file(path)) continue;
      std::fprintf(stderr, "FATAL: incremental %s diverged from full render\n", path);
      std::abort();
    }
  }

  sqldb::Database db;
  services::ServiceManager full;
  services::ServiceManager inc;
  vfs::FileSystem fs_full;
  vfs::FileSystem fs_inc;
  int serial = 0;
};

Propagation& fixture(int nodes) {
  static std::map<int, std::unique_ptr<Propagation>> cache;
  auto& slot = cache[nodes];
  if (!slot) slot = std::make_unique<Propagation>(nodes);
  return *slot;
}

/// Register (or retire) one node on an N-node cluster, then regenerate by
/// re-rendering every file in full — the paper's original update loop.
void BM_RegisterNodeFullRegen(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  bool add = true;
  for (auto _ : state) {
    if (add) f.add_node(); else f.remove_last_node();
    add = !add;
    benchmark::DoNotOptimize(f.full.regenerate(f.db, f.fs_full));
  }
  // The incremental manager saw the same commits; settle and verify bytes.
  (void)f.inc.regenerate(f.db, f.fs_inc);
  f.check_identical();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegisterNodeFullRegen)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Same single-node change, served by journal deltas: one line re-rendered
/// per file, independent of cluster size.
void BM_RegisterNodeIncremental(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  bool add = true;
  for (auto _ : state) {
    if (add) f.add_node(); else f.remove_last_node();
    add = !add;
    benchmark::DoNotOptimize(f.inc.regenerate(f.db, f.fs_inc));
  }
  (void)f.full.regenerate(f.db, f.fs_full);
  f.check_identical();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegisterNodeIncremental)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
