// CGI-path micro-benchmarks (google-benchmark): how fast the frontend can
// generate kickstart files, answer the SQL queries behind them, and parse
// the XML configuration. Section 6.1's design only works if on-the-fly
// generation is cheap enough to serve every installing node — these numbers
// show it is (thousands of profiles per second on modern hardware; the CGI
// of 2001 had to serve tens).
#include <benchmark/benchmark.h>

#include "kickstart/defaults.hpp"
#include "kickstart/generator.hpp"
#include "kickstart/server.hpp"
#include "rpm/synth.hpp"
#include "xml/parser.hpp"

namespace {

using namespace rocks;

struct Fixture {
  Fixture() : distro(rpm::make_redhat_release()), config(kickstart::make_default_configuration(distro)) {
    kickstart::ensure_cluster_schema(db);
    kickstart::insert_node_row(db, "00:30:c1:d8:ac:80", "frontend-0", 1, 0, 0, "10.1.1.1");
    for (int i = 0; i < 32; ++i) {
      kickstart::insert_node_row(
          db, Mac(0x00508BE00000ULL + static_cast<std::uint64_t>(i)).to_string(),
          "compute-0-" + std::to_string(i), 2, 0, i,
          Ipv4(Ipv4(10, 255, 255, 254).value() - static_cast<std::uint32_t>(i)).to_string());
    }
    server = std::make_unique<kickstart::KickstartServer>(
        db, config.files, config.graph, Ipv4(10, 1, 1, 1),
        "http://10.1.1.1/install/rocks-dist", &distro.repo);
  }

  rpm::SynthDistro distro;
  kickstart::DefaultConfiguration config;
  sqldb::Database db;
  std::unique_ptr<kickstart::KickstartServer> server;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_GenerateComputeKickstart(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.server->handle_request(Ipv4(10, 255, 255, 254)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GenerateComputeKickstart);

void BM_ResolveNodeByIp(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.server->resolve(Ipv4(10, 255, 255, 240)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveNodeByIp);

void BM_MembershipJoinQuery(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.db.execute("select nodes.name from nodes,memberships where "
                     "nodes.membership = memberships.id and "
                     "memberships.name = 'Compute'"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MembershipJoinQuery);

void BM_ParseFigure2NodeFile(benchmark::State& state) {
  const char* xml = kickstart::figure2_dhcp_server_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kickstart::NodeFile::parse("dhcp-server", xml));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseFigure2NodeFile);

void BM_GraphTraversal(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.config.graph.traverse("frontend"));
  }
}
BENCHMARK(BM_GraphTraversal);

}  // namespace

BENCHMARK_MAIN();
