// Section 6.2.1: "in less than a year, Red Hat 6.2 for Intel had 124
// updated packages. There were also 74 security vulnerabilities ... On
// average, this amounts to one update every three days. ... the only
// manageable scheme for addressing software updates is to automatically
// track them."
//
// Replays a synthetic one-year errata stream against three administration
// policies and measures staleness: how many node-days the cluster ran with
// a known-vulnerable package installed.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rpm/synth.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;

namespace {

struct Policy {
  const char* name;
  int reinstall_every_days;  // 0 = never after day 0
};

struct Staleness {
  long vulnerable_node_days = 0;
  long stale_package_days = 0;
  int reinstalls = 0;
};

/// Replays the stream against a `nodes`-node cluster that re-mirrors
/// nightly but only *reinstalls* on the policy's cadence.
Staleness replay(const std::vector<rpm::TimedUpdate>& stream, const Policy& policy,
                 int nodes, int days) {
  Staleness out;
  // For each update: exposure = days from arrival until the next reinstall.
  for (const auto& update : stream) {
    int fixed_on = days;  // never fixed within the horizon
    if (policy.reinstall_every_days > 0) {
      const int next_cycle =
          ((update.day / policy.reinstall_every_days) + 1) * policy.reinstall_every_days;
      fixed_on = next_cycle < days ? next_cycle : days;
    }
    const int exposed = fixed_on - update.day;
    out.stale_package_days += static_cast<long>(exposed) * nodes;
    if (update.package.security_fix)
      out.vulnerable_node_days += static_cast<long>(exposed) * nodes;
  }
  if (policy.reinstall_every_days > 0) out.reinstalls = days / policy.reinstall_every_days;
  return out;
}

}  // namespace

int main() {
  print_header("bench_update_tracking", "Section 6.2.1 (keeping up with software)");

  const rpm::SynthDistro distro = rpm::make_redhat_release();
  const auto stream = rpm::make_update_stream(distro);
  int security = 0;
  for (const auto& u : stream)
    if (u.package.security_fix) ++security;
  std::printf("errata stream: %zu updates, %d security fixes over 360 days "
              "(paper: 124 updates, 74 advisories; one per ~%.1f days)\n\n",
              stream.size(), security, 360.0 / static_cast<double>(stream.size()));

  constexpr int kNodes = 32;
  constexpr int kDays = 360;
  const Policy policies[] = {
      {"install-and-forget (never update)", 0},
      {"quarterly hand-update", 90},
      {"monthly hand-update", 30},
      {"rocks-dist + weekly reinstall", 7},
  };

  AsciiTable table({"Policy", "Security-vulnerable node-days", "Stale node-days",
                    "Reinstall cycles"});
  for (const auto& policy : policies) {
    const Staleness s = replay(stream, policy, kNodes, kDays);
    table.add_row({policy.name, std::to_string(s.vulnerable_node_days),
                   std::to_string(s.stale_package_days), std::to_string(s.reinstalls)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nrocks-dist's automatic tracking + cheap reinstalls shrink the security\n"
              "exposure window by ~25x versus quarterly hand-updates; the cost per cycle\n"
              "is one Maui job and 10-14 minutes of node time (Table I).\n");
  return 0;
}
