// Peer-assisted install distribution at scale (DESIGN.md §14).
//
// Table I's install times grow linearly with cluster size because every
// byte crosses the frontend NIC; Section 6.3's remedy (replicate the web
// server) only divides the slope. This harness plots the install-time
// curve for four distribution strategies at 1k / 10k / 100k nodes:
//
//   single-server   the paper baseline (one 7 MB/s frontend)
//   multi-server    Section 6.3: four load-balanced replicas
//   cascade         installed nodes relay the whole payload (tree)
//   swarm           chunked pipelined relay over the rack fabric
//
// The 100k-node full reinstall must simulate in single-digit wall-clock
// seconds — that is the netsim fast path's acceptance bar — and before any
// curve is trusted, a 1k-node divergence tripwire replays the same swarm
// wave under Allocator::kReference and aborts unless makespan and event
// counts match the incremental allocator exactly.
//
//   bench_peer_dist [--json <file>]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "netsim/peer.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;
using netsim::Allocator;
using netsim::DistMode;
using netsim::InstallWaveParams;
using netsim::InstallWaveResult;

namespace {

InstallWaveParams wave_params(DistMode mode, std::size_t nodes, Allocator allocator) {
  InstallWaveParams params;
  params.nodes = nodes;
  params.payload_bytes = 225.0 * kMB;  // the Table I install payload
  params.demand_cap = 1.0 * kMB;       // install-pipeline consume rate
  params.seed_capacity = kPaperModel.aggregate_Bps;
  params.peer.mode = mode;
  params.peer.seed_fanout = mode == DistMode::kSingleServer ? 0 : 8;
  params.topology.nodes_per_rack = 32;
  params.topology.rack_capacity = 12.0 * kMB;
  params.topology.uplink_capacity = 12.0 * kMB;
  params.allocator = allocator;
  return params;
}

struct CurvePoint {
  const char* mode;
  std::size_t nodes;
  InstallWaveResult result;
};

double peer_share(const InstallWaveResult& result) {
  const double total = result.peer_stats.peer_bytes + result.peer_stats.seed_bytes;
  return total > 0.0 ? 100.0 * result.peer_stats.peer_bytes / total : 0.0;
}

/// Replays a 1k swarm wave under both allocators; any divergence in the
/// simulated outcome means the incremental fast path is broken, and every
/// number this binary prints would be garbage — so die loudly.
void divergence_tripwire() {
  const auto fast =
      netsim::run_install_wave(wave_params(DistMode::kSwarm, 1000, Allocator::kIncremental));
  const auto reference =
      netsim::run_install_wave(wave_params(DistMode::kSwarm, 1000, Allocator::kReference));
  if (fast.makespan != reference.makespan || fast.completed != reference.completed ||
      fast.events_fired != reference.events_fired) {
    std::fprintf(stderr,
                 "DIVERGENCE: incremental vs reference allocator disagree at 1k nodes\n"
                 "  makespan  %.9f vs %.9f\n  completed %zu vs %zu\n  events    %llu vs %llu\n",
                 fast.makespan, reference.makespan, fast.completed, reference.completed,
                 static_cast<unsigned long long>(fast.events_fired),
                 static_cast<unsigned long long>(reference.events_fired));
    std::exit(1);
  }
  std::printf("tripwire: 1k-node swarm identical under kIncremental and kReference\n"
              "  (makespan %.1f s, %llu events) — fast path verified against the oracle\n",
              fast.makespan, static_cast<unsigned long long>(fast.events_fired));
}

void write_json(const std::string& path, const std::vector<CurvePoint>& points) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_peer_dist: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"benchmark\": \"bench_peer_dist\",\n  \"curves\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CurvePoint& p = points[i];
    const double events_per_sec =
        p.result.wall_seconds > 0.0
            ? static_cast<double>(p.result.events_fired) / p.result.wall_seconds
            : 0.0;
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"nodes\": %zu, \"makespan_seconds\": %.3f, "
                 "\"completed\": %zu, \"events\": %llu, \"wall_seconds\": %.4f, "
                 "\"events_per_second\": %.0f, \"peer_share_percent\": %.1f}%s\n",
                 p.mode, p.nodes, p.result.makespan, p.result.completed,
                 static_cast<unsigned long long>(p.result.events_fired),
                 p.result.wall_seconds, events_per_sec, peer_share(p.result),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("json written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  print_header("bench_peer_dist",
               "Table I scaling, fixed: peer-assisted distribution (DESIGN.md sec. 14)");
  divergence_tripwire();

  struct ModeSpec {
    const char* name;
    DistMode mode;
    std::size_t replicas;
  };
  const ModeSpec modes[] = {
      {"single-server", DistMode::kSingleServer, 1},
      {"multi-server x4", DistMode::kSingleServer, 4},
      {"cascade", DistMode::kCascade, 1},
      {"swarm", DistMode::kSwarm, 1},
  };
  const std::size_t scales[] = {1000, 10000, 100000};

  std::vector<CurvePoint> points;
  AsciiTable table({"Distribution", "Nodes", "Makespan (min)", "Peer share", "Events",
                    "Wall (s)"});
  for (const ModeSpec& spec : modes) {
    for (const std::size_t nodes : scales) {
      InstallWaveParams params = wave_params(spec.mode, nodes, Allocator::kIncremental);
      params.seed_replicas = spec.replicas;
      const InstallWaveResult result = netsim::run_install_wave(params);
      if (result.completed != nodes) {
        std::fprintf(stderr, "bench_peer_dist: %s/%zu finished only %zu installs\n",
                     spec.name, nodes, result.completed);
        return 1;
      }
      points.push_back({spec.name, nodes, result});
      table.add_row({spec.name, std::to_string(nodes), fixed(result.makespan / 60.0, 1),
                     strings::cat(fixed(peer_share(result), 0), "%"),
                     std::to_string(result.events_fired), fixed(result.wall_seconds, 2)});
    }
  }
  std::printf("%s", table.render().c_str());

  const CurvePoint& swarm_100k = points.back();
  std::printf(
      "\nsingle-server grows linearly with N (Table I's pathology); the swarm's\n"
      "curve is near-flat — rack-local chunk relay scales serving capacity with\n"
      "the cluster. 100k-node full reinstall simulated in %.2f wall seconds\n"
      "(%.0f events/s).\n",
      swarm_100k.result.wall_seconds,
      static_cast<double>(swarm_100k.result.events_fired) / swarm_100k.result.wall_seconds);
  if (swarm_100k.result.wall_seconds >= 10.0) {
    std::fprintf(stderr, "bench_peer_dist: 100k swarm took %.2f s wall (budget: < 10 s)\n",
                 swarm_100k.result.wall_seconds);
    return 1;
  }
  if (!json_path.empty()) write_json(json_path, points);
  return 0;
}
