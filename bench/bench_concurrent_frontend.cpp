// Concurrent-frontend benchmarks (google-benchmark): what the serving
// stack sustains during a mass reinstall (paper Section 6.3), now that the
// SQL engine serves reads from lock-free MVCC snapshots and the profile
// cache is striped.
//
// Two families:
//   - BM_HandleManyWorkers/W: a 256-node kickstart pulse fanned across a
//     W-worker pool. `sim_req_per_s` is the requests/sec of the simulated
//     serving cost model (ceil(N/W) rounds of kSimulatedRequestSeconds) —
//     deterministic and hardware-independent, this is the EXPERIMENTS.md
//     scaling number. `real_req_per_s` is the measured throughput on this
//     machine (meaningful only with ≥ W cores).
//   - BM_MixedReadWrite/W: insert-ethers appending nodes (exclusive lock)
//     racing a kickstart read pulse (pinned MVCC read views) — the Section
//     6.4 "integrate while serving" scenario.
//   - BM_RocksDistBuildWorkers/W: the symlink-tree build fanned across W
//     lanes; reports the simulated build_seconds of the ~650-package tree.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kickstart/defaults.hpp"
#include "kickstart/server.hpp"
#include "rocksdist/rocksdist.hpp"
#include "rpm/synth.hpp"
#include "sqldb/engine.hpp"
#include "support/strings.hpp"
#include "support/threadpool.hpp"
#include "vfs/filesystem.hpp"

namespace {

using namespace rocks;

constexpr std::size_t kNodes = 256;

struct Fixture {
  Fixture()
      : distro(rpm::make_redhat_release()),
        config(kickstart::make_default_configuration(distro)) {
    kickstart::ensure_cluster_schema(db);
    kickstart::insert_node_row(db, "00:30:c1:d8:ac:80", "frontend-0", 1, 0, 0, "10.1.1.1");
    for (std::size_t i = 0; i < kNodes; ++i) {
      const Ipv4 ip(Ipv4(10, 255, 255, 254).value() - static_cast<std::uint32_t>(i));
      kickstart::insert_node_row(
          db, Mac(0x00508BE00000ULL + i).to_string(),
          strings::cat("compute-0-", i), 2, 0, static_cast<int>(i), ip.to_string());
      ips.push_back(ip);
    }
    server = std::make_unique<kickstart::KickstartServer>(
        db, config.files, config.graph, Ipv4(10, 1, 1, 1),
        "http://10.1.1.1/install/rocks-dist", &distro.repo);
  }

  rpm::SynthDistro distro;
  kickstart::DefaultConfiguration config;
  sqldb::Database db;
  std::vector<Ipv4> ips;
  std::unique_ptr<kickstart::KickstartServer> server;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_HandleManyWorkers(benchmark::State& state) {
  auto& f = fixture();
  const auto workers = static_cast<std::size_t>(state.range(0));
  support::ThreadPool pool(workers);
  // Fresh engine counters per phase: each W measures only its own pulse,
  // not the residue of earlier arguments sharing the static fixture.
  f.db.reset_stats();
  double sim_seconds = 0.0;
  std::size_t batches = 0;
  for (auto _ : state) {
    const auto report = f.server->handle_many(pool, f.ips);
    benchmark::DoNotOptimize(report.results.data());
    if (report.failed != 0) state.SkipWithError("request failed");
    sim_seconds += report.simulated_seconds;
    ++batches;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batches * kNodes));
  // Requests/sec under the simulated serving model — the scaling metric.
  state.counters["sim_req_per_s"] =
      static_cast<double>(batches * kNodes) / sim_seconds;
  state.counters["real_req_per_s"] = benchmark::Counter(
      static_cast<double>(batches * kNodes), benchmark::Counter::kIsRate);
  state.counters["read_views"] = static_cast<double>(f.db.read_views_opened());
}
BENCHMARK(BM_HandleManyWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Insert-ethers integrating new nodes (exclusive writes) racing a
/// kickstart read pulse (lock-free snapshot reads): the Section 6.4
/// "integrate while serving" scenario. The writer runs on its own thread so
/// the pool's workers carry only the read pulse.
void BM_MixedReadWrite(benchmark::State& state) {
  auto& f = fixture();
  const auto workers = static_cast<std::size_t>(state.range(0));
  support::ThreadPool pool(workers);
  f.db.reset_stats();
  std::uint64_t inserted = 0;
  std::size_t batches = 0;
  for (auto _ : state) {
    std::thread writer([&f, &inserted] {
      for (int burst = 0; burst < 8; ++burst) {
        kickstart::insert_node_row(
            f.db, Mac(0x00A0C9000000ULL + inserted).to_string(),
            strings::cat("transient-1-", inserted), 2, 1, static_cast<int>(inserted),
            Ipv4(Ipv4(10, 250, 0, 1).value() + static_cast<std::uint32_t>(inserted))
                .to_string());
        ++inserted;
      }
    });
    const auto report = f.server->handle_many(pool, f.ips);
    writer.join();
    benchmark::DoNotOptimize(report.results.data());
    if (report.failed != 0) state.SkipWithError("request failed");
    ++batches;
    // Keep the table from growing without bound across iterations.
    f.db.execute("DELETE FROM nodes WHERE rack = 1");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batches * kNodes));
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(batches * kNodes), benchmark::Counter::kIsRate);
  state.counters["writes_per_batch"] = 8;
  state.counters["excl_locks"] = static_cast<double>(f.db.exclusive_lock_acquisitions());
}
BENCHMARK(BM_MixedReadWrite)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RocksDistBuildWorkers(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  support::ThreadPool pool(workers);
  auto& f = fixture();
  double build_seconds = 0.0;
  double mirror_seconds = 0.0;
  for (auto _ : state) {
    vfs::FileSystem fs;
    rocksdist::RocksDist rd(fs);
    rd.set_pool(&pool);
    const auto mirror = rd.mirror(f.distro.repo, "redhat/7.2");
    const auto report = rd.dist(f.config.files, f.config.graph);
    benchmark::DoNotOptimize(report.tree_bytes);
    build_seconds = report.build_seconds;
    mirror_seconds = mirror.mirror_seconds;
  }
  state.counters["sim_build_s"] = build_seconds;
  state.counters["sim_mirror_s"] = mirror_seconds;
}
BENCHMARK(BM_RocksDistBuildWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
