// The fault-tolerant batch scheduler's three load-bearing claims
// (DESIGN.md §16), asserted — a regression exits nonzero:
//
//   1. Durability is affordable: with every job transition a WAL'd SQL
//      statement, the scheduler still pushes thousands of jobs/second
//      through submit -> start -> complete -> accounting at 1k and 10k
//      nodes, keeping the machines busy (utilization is asserted, not
//      just printed).
//   2. Drain beats preempt: a rolling reinstall that drains busy nodes
//      (Section 5's "as not to disturb any running applications")
//      requeues and cancels *nothing*, at the price of a longer
//      wall-clock upgrade than the naive power-cycle-everything operator
//      — which requeues every running job.
//   3. The chaos drill: 10k nodes, 1M jobs streamed through a bounded
//      live window, 32 nodes killed mid-run, the frontend crashed
//      exactly between the accounting INSERT and the live-row DELETE and
//      recovered from the disk image (recovery is replayed twice
//      independently and must be byte-identical). Every job ends in the
//      ledger exactly once.
//
//   bench_scheduler [--json <file>] [--nodes N] [--jobs N]
//
// --nodes/--jobs rescale the chaos drill only (the acceptance run is the
// default 10000 / 1000000).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "batch/accounting.hpp"
#include "batch/scheduler.hpp"
#include "netsim/engine.hpp"
#include "sqldb/engine.hpp"
#include "support/crashpoint.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "vfs/filesystem.hpp"

using namespace rocks;
using batch::Accounting;
using batch::AccountingTotals;
using batch::JobSpec;
using batch::Scheduler;
using batch::SchedulerConfig;
using batch::SchedulerHooks;
using sqldb::Database;
using support::CrashError;
using support::CrashPoints;

namespace {

constexpr const char* kDir = "/state/db";

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "bench_scheduler: %s\n", message.c_str());
  std::exit(1);
}

std::string host(std::size_t i) { return strings::cat("c", i); }

JobSpec user_job(std::string name, std::size_t nodes, double walltime, int max_retries = 3) {
  JobSpec spec;
  spec.name = std::move(name);
  spec.nodes = nodes;
  spec.walltime_seconds = walltime;
  spec.max_retries = max_retries;
  return spec;
}

// --- 1. durable scheduling throughput ---------------------------------------

struct Throughput {
  std::size_t nodes = 0;
  std::size_t jobs = 0;
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  double utilization = 0.0;  // accounted node-seconds / (nodes * makespan)
  std::uint64_t backfilled = 0;
  double sim_makespan = 0.0;
};

Throughput run_throughput(std::size_t nodes, std::size_t jobs) {
  vfs::FileSystem disk;
  netsim::Simulator sim;
  Database db;
  db.open_durable(disk, kDir);
  Scheduler sched(db, sim);
  for (std::size_t i = 0; i < nodes; ++i) sched.register_node(host(i));
  sched.resume();

  Rng rng(0xBE7C);
  std::vector<JobSpec> specs;
  specs.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j)
    specs.push_back(user_job(strings::cat("w", j), 1 + rng.next_below(4),
                             20.0 + static_cast<double>(rng.next_below(100))));

  const double start = now_seconds();
  sched.submit_batch(specs);
  sched.drain();
  Throughput out;
  out.nodes = nodes;
  out.jobs = jobs;
  out.wall_seconds = now_seconds() - start;
  out.jobs_per_second = static_cast<double>(jobs) / out.wall_seconds;
  out.sim_makespan = sim.now();
  out.backfilled = sched.stats().backfilled;

  const AccountingTotals totals = Accounting::totals(db);
  if (totals.completed != jobs || totals.cancelled != 0 || totals.duplicate_ids != 0)
    die(strings::cat("throughput lost jobs at ", nodes, " nodes: ", totals.completed,
                     " completed, ", totals.cancelled, " cancelled, ", totals.duplicate_ids,
                     " duplicates"));
  out.utilization = totals.node_seconds / (static_cast<double>(nodes) * out.sim_makespan);
  if (out.utilization < 0.5)
    die(strings::cat("utilization collapsed at ", nodes, " nodes: ", fixed(out.utilization, 3)));
  if (out.backfilled == 0) die("EASY backfill never fired under a saturating mixed workload");
  return out;
}

// --- 2. reinstall: drain vs preempt -----------------------------------------

struct ReinstallRun {
  double makespan = 0.0;  // request -> every node reinstalled / revived
  std::uint64_t requeued = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t completed = 0;
  double total_wait = 0.0;
};

ReinstallRun run_reinstall(bool drain_mode) {
  constexpr std::size_t kNodes = 256;
  constexpr std::size_t kJobs = 512;
  constexpr double kInstall = 600.0;

  vfs::FileSystem disk;
  netsim::Simulator sim;
  Database db;
  db.open_durable(disk, kDir);
  SchedulerConfig config;
  config.reinstall_wave = 32;
  Scheduler sched(db, sim, config);
  // Synthetic node: a reinstall is kInstall seconds of darkness, then the
  // node reports back in.
  SchedulerHooks hooks;
  hooks.reinstall = [&sim, &sched](const std::string& h) {
    sim.schedule(kInstall, [&sched, h] { sched.node_up(h); });
  };
  sched.set_hooks(std::move(hooks));
  for (std::size_t i = 0; i < kNodes; ++i) sched.register_node(host(i));
  sched.resume();

  Rng rng(0xD2A1);
  std::vector<JobSpec> specs;
  for (std::size_t j = 0; j < kJobs; ++j)
    specs.push_back(user_job(strings::cat("u", j), 1 + rng.next_below(4),
                             120.0 + static_cast<double>(rng.next_below(180)),
                             /*max_retries=*/5));
  sched.submit_batch(specs);
  sim.run_until(30.0);  // saturate the cluster first

  const double t0 = sim.now();
  std::size_t revived = 0;
  if (drain_mode) {
    sched.request_reinstall_all();
    while (sched.stats().reinstalls_finished < kNodes)
      if (!sim.step()) die("drain-mode reinstall stalled");
  } else {
    // The naive operator: power-cycle every node right now, jobs be damned.
    for (std::size_t i = 0; i < kNodes; ++i) sched.node_down(host(i));
    for (std::size_t i = 0; i < kNodes; ++i)
      sim.schedule(kInstall, [&sched, &revived, h = host(i)] {
        sched.node_up(h);
        ++revived;
      });
    while (revived < kNodes)
      if (!sim.step()) die("preempt-mode reinstall stalled");
  }
  ReinstallRun out;
  out.makespan = sim.now() - t0;
  sched.drain();
  out.requeued = sched.stats().requeued;

  const AccountingTotals totals = Accounting::totals(db);
  out.cancelled = totals.cancelled;
  out.completed = totals.completed;
  out.total_wait = totals.total_wait;
  if (totals.completed + totals.cancelled != kJobs || totals.duplicate_ids != 0)
    die("reinstall run lost jobs");
  return out;
}

// --- 3. the chaos drill ------------------------------------------------------

struct Chaos {
  std::size_t nodes = 0;
  std::uint64_t jobs = 0;
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  double sim_makespan = 0.0;
  std::uint64_t requeued = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t stale_rows_repaired = 0;
  int crashes = 0;
};

Chaos run_chaos(std::size_t kNodes, std::uint64_t kJobs) {
  const std::uint64_t kChunk = std::min<std::uint64_t>(20000, kJobs);
  const std::uint64_t kSnapshotEvery = 250000;

  vfs::FileSystem disk;
  auto sim = std::make_unique<netsim::Simulator>();
  auto db = std::make_unique<Database>();
  db->open_durable(disk, kDir);
  auto sched = std::make_unique<Scheduler>(*db, *sim);
  for (std::size_t i = 0; i < kNodes; ++i) sched->register_node(host(i));
  sched->resume();

  Rng rng(0xC4A0);
  Chaos out;
  out.nodes = kNodes;
  out.jobs = kJobs;
  std::uint64_t submitted = 0;
  // Terminal count across the crash: the recovered scheduler's stats start
  // from zero, so the pre-crash total comes from the ledger once.
  std::uint64_t base_finished = 0, base_requeued = 0;
  bool killed = false, armed = false;
  std::uint64_t snap_next = kSnapshotEvery;
  const double wall0 = now_seconds();

  const auto finished = [&] {
    return base_finished + sched->stats().completed + sched->stats().cancelled;
  };

  for (;;) {
    // Stream the workload through a bounded live window — 1M rows never
    // coexist in sched_jobs.
    if (submitted < kJobs && sched->live_count() < kChunk) {
      const std::uint64_t n = std::min(kChunk, kJobs - submitted);
      std::vector<JobSpec> specs;
      specs.reserve(n);
      for (std::uint64_t j = 0; j < n; ++j)
        specs.push_back(user_job(strings::cat("j", submitted + j), 1 + rng.next_below(4),
                                 20.0 + static_cast<double>(rng.next_below(100))));
      sched->submit_batch(specs);
      submitted += n;
    }
    const std::uint64_t fin = finished();
    if (fin >= kJobs) break;

    // A quarter of the way in, 32 nodes spread across the cluster go dark;
    // the machine room brings them back ten minutes later.
    if (!killed && fin >= kJobs / 4) {
      killed = true;
      const std::size_t stride = kNodes / 32;
      for (std::size_t v = 0; v < 32; ++v) {
        const std::string h = host(v * stride);
        sched->node_down(h);
        sim->schedule(600.0, [&sched, h] { sched->node_up(h); });
      }
    }
    // Halfway in, the frontend dies between the accounting INSERT and the
    // live-row DELETE of the very next finish.
    if (!armed && fin >= kJobs / 2) {
      armed = true;
      CrashPoints::instance().arm("sched.finish.between", 1);
    }
    // Zero-pause checkpoints bound the WAL while the drill runs.
    if (fin >= snap_next) {
      db->snapshot();
      snap_next += kSnapshotEvery;
    }

    try {
      if (!sim->step()) {
        if (submitted < kJobs) continue;  // refill on the next pass
        die("simulator idle with jobs unaccounted");
      }
    } catch (const CrashError&) {
      CrashPoints::instance().disarm_all();
      ++out.crashes;
      base_requeued += sched->stats().requeued;
      const double crash_time = sim->now();
      {
        // Recovery determinism: replay the crashed disk image twice,
        // independently; the rebuilt databases must be byte-identical.
        vfs::FileSystem image_a, image_b;
        image_a.copy_tree(disk, kDir, kDir);
        image_b.copy_tree(disk, kDir, kDir);
        Database db_a, db_b;
        db_a.open_durable(image_a, kDir);
        db_b.open_durable(image_b, kDir);
        if (db_a.dump_state() != db_b.dump_state())
          die("recovery is not byte-identical across independent replays");
      }
      // Restart the frontend over the image the crash left behind; the
      // operator powers every node back on (the pending revival events
      // died with the old simulator).
      sched.reset();
      db.reset();
      vfs::FileSystem next_disk;
      next_disk.copy_tree(disk, kDir, kDir);
      disk = std::move(next_disk);
      db = std::make_unique<Database>();
      db->open_durable(disk, kDir);
      sim = std::make_unique<netsim::Simulator>();
      sched = std::make_unique<Scheduler>(*db, *sim);
      for (std::size_t i = 0; i < kNodes; ++i) {
        sched->register_node(host(i));
        sched->node_up(host(i));
      }
      sched->resume();
      out.stale_rows_repaired += sched->stats().stale_rows_repaired;
      const AccountingTotals so_far = Accounting::totals(*db);
      base_finished = so_far.completed + so_far.cancelled;
      sim->run_until(crash_time);  // the wall clock does not reset
    }
  }

  out.wall_seconds = now_seconds() - wall0;
  out.jobs_per_second = static_cast<double>(kJobs) / out.wall_seconds;
  out.sim_makespan = sim->now();
  out.requeued = base_requeued + sched->stats().requeued;

  const AccountingTotals totals = Accounting::totals(*db);
  out.cancelled = totals.cancelled;
  if (totals.completed + totals.cancelled != kJobs)
    die(strings::cat("chaos drill lost jobs: ", totals.completed, " completed + ",
                     totals.cancelled, " cancelled != ", kJobs));
  if (totals.duplicate_ids != 0)
    die(strings::cat("exactly-once violated: ", totals.duplicate_ids, " duplicate ledger ids"));
  if (Accounting::max_id(*db) != kJobs)
    die("ledger id range does not match the submitted workload");
  if (out.crashes != 1) die("the armed crash point never fired");
  if (out.stale_rows_repaired < 1)
    die("crash landed between INSERT and DELETE but recovery repaired nothing");
  if (sched->live_count() != 0) die("live jobs remain after the drill");
  return out;
}

// --- reporting ---------------------------------------------------------------

void write_json(const std::string& path, const Throughput* tp, std::size_t tp_count,
                const ReinstallRun& drain, const ReinstallRun& preempt, const Chaos& chaos) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) die(strings::cat("cannot write ", path));
  std::fprintf(out, "{\n  \"benchmark\": \"bench_scheduler\",\n");
  std::fprintf(out, "  \"throughput\": [\n");
  for (std::size_t i = 0; i < tp_count; ++i) {
    const Throughput& t = tp[i];
    std::fprintf(out,
                 "    {\"nodes\": %zu, \"jobs\": %zu, \"jobs_per_second\": %.0f, "
                 "\"utilization\": %.3f, \"backfilled\": %llu, \"sim_makespan\": %.0f, "
                 "\"wall_seconds\": %.3f}%s\n",
                 t.nodes, t.jobs, t.jobs_per_second, t.utilization,
                 static_cast<unsigned long long>(t.backfilled), t.sim_makespan, t.wall_seconds,
                 i + 1 < tp_count ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  const auto reinstall_json = [out](const char* mode, const ReinstallRun& r, const char* tail) {
    std::fprintf(out,
                 "    \"%s\": {\"makespan\": %.0f, \"requeued\": %llu, \"cancelled\": %llu, "
                 "\"completed\": %llu, \"total_wait\": %.0f}%s\n",
                 mode, r.makespan, static_cast<unsigned long long>(r.requeued),
                 static_cast<unsigned long long>(r.cancelled),
                 static_cast<unsigned long long>(r.completed), r.total_wait, tail);
  };
  std::fprintf(out, "  \"reinstall\": {\n");
  reinstall_json("drain", drain, ",");
  reinstall_json("preempt", preempt, "");
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"chaos\": {\"nodes\": %zu, \"jobs\": %llu, \"jobs_per_second\": %.0f, "
               "\"requeued\": %llu, \"cancelled\": %llu, \"crashes\": %d, "
               "\"stale_rows_repaired\": %llu, \"sim_makespan\": %.0f, \"wall_seconds\": %.1f}\n",
               chaos.nodes, static_cast<unsigned long long>(chaos.jobs), chaos.jobs_per_second,
               static_cast<unsigned long long>(chaos.requeued),
               static_cast<unsigned long long>(chaos.cancelled), chaos.crashes,
               static_cast<unsigned long long>(chaos.stale_rows_repaired), chaos.sim_makespan,
               chaos.wall_seconds);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("json written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t chaos_nodes = 10000;
  std::uint64_t chaos_jobs = 1000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc)
      chaos_nodes = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      chaos_jobs = std::strtoull(argv[++i], nullptr, 10);
  }

  std::printf("\n================================================================\n"
              "bench_scheduler\n  durable queue throughput + drain-vs-preempt + the chaos "
              "drill\n"
              "================================================================\n");

  const std::size_t tp_scales[][2] = {{1000, 50000}, {10000, 100000}};
  Throughput tp[2];
  AsciiTable tp_table({"Nodes", "Jobs", "Jobs/s", "Utilization", "Backfilled", "Makespan (sim s)"});
  for (std::size_t i = 0; i < 2; ++i) {
    tp[i] = run_throughput(tp_scales[i][0], tp_scales[i][1]);
    tp_table.add_row({std::to_string(tp[i].nodes), std::to_string(tp[i].jobs),
                      fixed(tp[i].jobs_per_second, 0), fixed(tp[i].utilization, 3),
                      std::to_string(tp[i].backfilled), fixed(tp[i].sim_makespan, 0)});
  }
  std::printf("%s", tp_table.render().c_str());

  const ReinstallRun drain = run_reinstall(/*drain_mode=*/true);
  const ReinstallRun preempt = run_reinstall(/*drain_mode=*/false);
  AsciiTable ri_table({"Mode", "Makespan (sim s)", "Requeued", "Cancelled", "Completed",
                       "Total wait (s)"});
  ri_table.add_row({"drain", fixed(drain.makespan, 0), std::to_string(drain.requeued),
                    std::to_string(drain.cancelled), std::to_string(drain.completed),
                    fixed(drain.total_wait, 0)});
  ri_table.add_row({"preempt", fixed(preempt.makespan, 0), std::to_string(preempt.requeued),
                    std::to_string(preempt.cancelled), std::to_string(preempt.completed),
                    fixed(preempt.total_wait, 0)});
  std::printf("%s", ri_table.render().c_str());
  if (drain.requeued != 0 || drain.cancelled != 0)
    die("drain-mode reinstall disturbed running jobs");
  if (preempt.requeued == 0)
    die("preempt baseline requeued nothing — the comparison is vacuous");
  if (drain.makespan <= preempt.makespan)
    die("drain finished faster than preempt — the trade-off inverted, check the wave pacing");
  std::printf("drain requeues nothing and cancels nothing; the naive power-cycle requeued "
              "%llu running jobs.\n",
              static_cast<unsigned long long>(preempt.requeued));

  std::printf("chaos drill: %zu nodes, %llu jobs, kill 32 mid-run, crash the frontend "
              "between INSERT and DELETE...\n",
              chaos_nodes, static_cast<unsigned long long>(chaos_jobs));
  const Chaos chaos = run_chaos(chaos_nodes, chaos_jobs);
  std::printf("chaos drill: %.0f jobs/s wall, %llu requeues, %llu cancelled, %d crash, "
              "%llu stale rows repaired, recovery byte-identical, every job accounted "
              "exactly once.\n",
              chaos.jobs_per_second, static_cast<unsigned long long>(chaos.requeued),
              static_cast<unsigned long long>(chaos.cancelled), chaos.crashes,
              static_cast<unsigned long long>(chaos.stale_rows_repaired));

  if (!json_path.empty()) write_json(json_path, tp, 2, drain, preempt, chaos);
  return 0;
}
