// Section 6.3 footnote: "In practice, Gigabit Ethernet will support 7.0-9.5
// times the number of concurrent full-speed reinstallations over Fast
// Ethernet."
//
// Sweep: largest N such that N concurrent installs all run at the full
// 1 MB/s demand, for a Fast Ethernet server and a Gigabit server (modeled
// at the practical utilizations the footnote's source [26] reports).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "netsim/engine.hpp"
#include "netsim/http.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;

namespace {

/// Largest install count that still gets a full 1 MB/s per node.
std::size_t max_full_speed(double server_Bps) {
  std::size_t n = 1;
  while (true) {
    netsim::Simulator sim;
    netsim::HttpServer server(sim, "web", server_Bps);
    std::vector<netsim::FlowId> flows;
    for (std::size_t i = 0; i < n + 1; ++i)
      flows.push_back(server.serve(225.0 * kMB, 1.0 * kMB, nullptr));
    if (server.rate_of(flows[0]) < 1.0 * kMB - 1.0) return n;
    ++n;
    if (n > 512) return n;  // safety
  }
}

}  // namespace

int main() {
  print_header("bench_gige_scaling", "Section 6.3 footnote (GigE vs Fast Ethernet)");

  const double fast_e = 7.0 * kMB;  // the paper's Fast Ethernet model
  const std::size_t base = max_full_speed(fast_e);

  AsciiTable table({"Server NIC", "Capacity (MB/s)", "Max full-speed installs", "vs FastE"});
  table.add_row({"Fast Ethernet (70%)", fixed(fast_e / kMB, 1), std::to_string(base), "1.0x"});
  // The footnote's practical range: GigE delivers 7.0-9.5x Fast Ethernet.
  for (double factor : {7.0, 8.5, 9.5}) {
    const double gige = fast_e * factor;
    const std::size_t n = max_full_speed(gige);
    table.add_row({fixed(factor, 1) + "x GigE", fixed(gige / kMB, 1), std::to_string(n),
                   fixed(static_cast<double>(n) / static_cast<double>(base), 1) + "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper: \"theoretically ... 10 times\", practically 7.0-9.5x; the\n"
              "full-speed install count scales exactly with server capacity.\n");
  return 0;
}
