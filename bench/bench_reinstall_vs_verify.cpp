// Sections 1 & 5: "With attention to complete automation of this process,
// it becomes faster to reinstall all nodes to a known configuration than it
// is to determine if nodes were out of synchronization in the first place."
//
// Compares three consistency-recovery strategies on a drifted cluster:
//   (a) Rocks reinstall (concurrent, HTTP-fed, self-verifying by
//       construction),
//   (b) cfengine-style exhaustive parity check + repair (per-file
//       examination of every node, every run — and blind to unmanaged
//       drift),
//   (c) parity *audit only* (the "determine if out of sync" half).
// plus the NFS-root diskless design the paper rejects (recurring boot cost).
#include <cstdio>
#include <vector>

#include "baselines/cfengine.hpp"
#include "bench_common.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;

int main() {
  print_header("bench_reinstall_vs_verify", "Sections 1 & 5 (reinstall as the management tool)");

  constexpr std::size_t kNodes = 16;
  auto cluster = make_cluster(kNodes, kPhysical);

  // Drift: a botched hand-update touched some nodes, users left junk on
  // others (the Section 3.2 pitfalls).
  auto nodes = cluster->nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    // Managed drift: a package-owned binary got trashed (policy can fix it).
    if (i % 3 == 0) nodes[i]->corrupt_file("/usr/bin/sed", "trashed by bad update");
    // Unmanaged drift: hand-built software policy knows nothing about.
    if (i % 5 == 0) nodes[i]->corrupt_file("/usr/local/bin/leftover", "hand-built");
  }

  // Reference node for parity checking: a freshly installed gold image.
  auto gold_cluster = make_cluster(1, kPhysical);
  const cluster::Node* gold = gold_cluster->node("compute-0-0");

  // (c) audit only, every node, serialized through one admin workstation.
  baselines::CfengineAgent agent;
  double audit_seconds = 0.0;
  std::size_t found = 0;
  for (auto* node : nodes) {
    const auto report = agent.audit(*node, *gold);
    audit_seconds += report.seconds;
    found += report.drifted;
  }

  // (b) converge (check + repair). Residual: unmanaged files survive.
  double converge_seconds = 0.0;
  std::size_t residual = 0;
  for (auto* node : nodes) {
    const auto report = agent.converge(*node, *gold);
    converge_seconds += report.seconds;
  }
  for (auto* node : nodes)
    if (node->fs().exists("/usr/local/bin/leftover")) ++residual;

  // (a) Rocks: shoot everything, concurrently.
  const double reinstall_seconds = cluster->reinstall_all();
  std::size_t residual_after_reinstall = 0;
  for (auto* node : nodes)
    if (node->fs().exists("/usr/local/bin/leftover")) ++residual_after_reinstall;

  AsciiTable table({"Strategy", "Wall time (min)", "Drift repaired", "Residual drift"});
  table.add_row({"parity audit only (detect)", fixed(audit_seconds / 60.0, 1),
                 "0 (report only)", std::to_string(found) + " findings to act on"});
  table.add_row({"cfengine-style converge", fixed(converge_seconds / 60.0, 1),
                 "managed files only", std::to_string(residual) + " unmanaged files"});
  table.add_row({"rocks reinstall (16 concurrent)", fixed(reinstall_seconds / 60.0, 1),
                 "everything", std::to_string(residual_after_reinstall)});
  std::printf("%s", table.render().c_str());

  // The rejected alternative: NFS-root diskless. "by pushing the software to
  // the nodes, we incur a single network bandwidth penalty which does not
  // recur every time the node boots" (Section 6.2.3).
  constexpr double kBootsPerYear = 50.0;  // power events, kernel updates...
  const double push_cost_gb = kNodes * 225.0 / 1024.0;
  const double nfs_cost_gb = kBootsPerYear * kNodes * 225.0 / 1024.0;
  std::printf("\nNFS-root diskless ablation: push-once costs %.1f GB per cluster "
              "reinstall;\nbooting the image over NFS costs %.0f GB/year at %.0f "
              "boots/node/year -- and\nputs the frontend's unscalable NFS server on "
              "every boot's critical path.\n",
              push_cost_gb, nfs_cost_gb, kBootsPerYear);

  std::printf("\nthe paper's argument, quantified: a full exhaustive *check* alone costs\n"
              "about as much wall time as the reinstall that would also have fixed\n"
              "unmanaged drift -- and the check must be re-run forever.\n");
  return 0;
}
