// Table I: "Reinstallation performance" — total wall time to reinstall
// 1..32 nodes concurrently from a single HTTP server.
//
// Paper setup: dual 733 MHz PIII HTTP server on 100 Mbit Ethernet, compute
// nodes pull ~225 MB each, times include the Myrinet driver rebuild.
// Paper numbers: 1 -> 10.3 min, 2 -> 9.8, 4 -> 10.1, 8 -> 10.4,
//                16 -> 11.1, 32 -> 13.7.
//
// We run the same pulse under two calibrations (see EXPERIMENTS.md for the
// analysis): the paper's own 7 MB/s server model, and the physical upper
// bound of the stated hardware (100 Mbit at 95% aggregate utilization).
// The headline claim — install time is FLAT until the server NIC
// saturates near 7-11 concurrent installs, then grows linearly — holds in
// both.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "support/table.hpp"

namespace {

using namespace rocks;
using namespace rocks::bench;

double reinstall_minutes(std::size_t nodes, const Calibration& calibration) {
  auto cluster = make_cluster(nodes, calibration);
  return cluster->reinstall_all() / 60.0;
}

}  // namespace

int main() {
  print_header("bench_table1_reinstall", "Table I (reinstallation performance)");

  const std::vector<std::size_t> counts{1, 2, 4, 8, 16, 32};
  const std::vector<double> paper_minutes{10.3, 9.8, 10.1, 10.4, 11.1, 13.7};

  AsciiTable table({"Nodes", "Paper (min)", "paper-model (min)", "physical (min)"});
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double model = reinstall_minutes(counts[i], kPaperModel);
    const double physical = reinstall_minutes(counts[i], kPhysical);
    table.add_row({std::to_string(counts[i]), fixed(paper_minutes[i], 1), fixed(model, 1),
                   fixed(physical, 1)});
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nShape check: flat until the server NIC saturates (paper-model knee at 7\n"
      "concurrent 1 MB/s installs; physical knee at ~11), then linear growth.\n"
      "The paper's published 32-node time (13.7 min) is below the 100 Mbit\n"
      "physical bound for 32 x 225 MB + a ~6.6-min non-network tail; see\n"
      "EXPERIMENTS.md for the discrepancy analysis.\n");
  return 0;
}
