// Section 6.3: "The easiest way to manage kernel version changes is to have
// each compute node compile the Myrinet driver from a source RPM ... The
// seemingly heavy-weight solution adds only a 20-30% time penalty on
// reinstallation." Plus the ablation the paper describes qualitatively: the
// alternative is maintaining N prebuilt driver binaries for N kernels.
#include <cstdio>

#include "bench_common.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;

int main() {
  print_header("bench_driver_rebuild", "Section 6.3 (on-node Myrinet driver rebuild)");

  // With the driver: the stock compute appliance.
  auto with = make_cluster(1, kPaperModel);
  const double with_driver = [&] {
    with->node("compute-0-0")->shoot();
    with->run_until_stable();
    return with->node("compute-0-0")->last_install_duration();
  }();

  // Without: edit the graph (the §6.2.3 customization workflow), rebuild the
  // distribution, reinstall.
  auto without = make_cluster(1, kPaperModel);
  without->frontend().graph().remove_edge("compute", "myrinet");
  without->frontend().rebuild_distribution();
  const double without_driver = [&] {
    without->node("compute-0-0")->shoot();
    without->run_until_stable();
    return without->node("compute-0-0")->last_install_duration();
  }();

  const double penalty = (with_driver - without_driver) / without_driver * 100.0;
  AsciiTable table({"Configuration", "Reinstall (min)", "Packages"});
  table.add_row({"with gm-driver source rebuild", fixed(with_driver / 60.0, 1),
                 std::to_string(with->node("compute-0-0")->rpmdb().package_count())});
  table.add_row({"without Myrinet", fixed(without_driver / 60.0, 1),
                 std::to_string(without->node("compute-0-0")->rpmdb().package_count())});
  std::printf("%s", table.render().c_str());
  std::printf("\ndriver-rebuild penalty: %.0f%% (paper: 20-30%%)\n", penalty);

  // The ablation: prebuilt binaries avoid the on-node compile but cost one
  // package build + repackage + redistribute cycle per kernel update. The
  // paper counted 16 stable-tree kernel updates in a year.
  constexpr int kKernelUpdatesPerYear = 16;
  constexpr double kManualCycleMinutes = 45.0;  // build, package, copy back, re-dist
  std::printf(
      "\nalternative (prebuilt binaries): %d kernel updates/year x ~%.0f min of\n"
      "maintainer time per driver package = %.1f h/year of toil, versus %.0f s of\n"
      "node time per reinstall with the source-RPM approach.\n",
      kKernelUpdatesPerYear, kManualCycleMinutes,
      kKernelUpdatesPerYear * kManualCycleMinutes / 60.0, with_driver - without_driver);
  return 0;
}
