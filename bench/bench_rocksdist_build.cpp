// Section 6.2.3: "because each distribution is composed mainly of symbolic
// links, each distribution is lightweight (on the order of 25MB) and can be
// built in under a minute."
//
// Builds a full-size distribution (the complete synthetic Red Hat release,
// ~1100 packages) and a campus-derived child (the Figure 6 hierarchy), and
// reports tree composition, on-disk size, and simulated build time.
#include <cstdio>

#include "bench_common.hpp"
#include "kickstart/defaults.hpp"
#include "rocksdist/rocksdist.hpp"
#include "rpm/synth.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;

int main() {
  print_header("bench_rocksdist_build", "Section 6.2.3 (distribution size & build time)");

  // Full-size release: the real Red Hat 7.2 shipped on the order of a
  // thousand binary RPMs.
  const rpm::SynthDistro distro = rpm::make_redhat_release();
  const auto config = kickstart::make_default_configuration(distro);

  vfs::FileSystem fs;
  rocksdist::RocksDist rd(fs);
  const auto mirror = rd.mirror(distro.repo, "redhat/7.2");
  const auto updates = rpm::make_update_stream(distro);
  rpm::Repository errata("updates");
  for (const auto& u : updates) errata.add(u.package);
  rd.mirror(errata, "updates/7.2");
  const auto report = rd.dist(config.files, config.graph);

  AsciiTable table({"Quantity", "Simulated", "Paper"});
  table.add_row({"mirrored packages", std::to_string(mirror.packages_fetched), "-"});
  table.add_row({"mirror size (MB)",
                 fixed(static_cast<double>(mirror.bytes_fetched) / kMB, 0), "~1 CD+updates"});
  table.add_row({"resolved packages in dist", std::to_string(report.package_count), "-"});
  table.add_row({"stale versions dropped", std::to_string(report.dropped_stale), "-"});
  table.add_row({"symlinks in tree", std::to_string(report.symlink_count), "\"mostly links\""});
  table.add_row({"dist tree size (MB)",
                 fixed(static_cast<double>(report.tree_bytes) / kMB, 1), "~25 MB"});
  table.add_row({"build time (s)", fixed(report.build_seconds, 1), "< 60 s"});
  std::printf("%s", table.render().c_str());

  // The Figure 6 derivation chain: campus mirrors SDSC, department mirrors
  // campus, each adding local packages.
  vfs::FileSystem campus_fs;
  rocksdist::RocksDist campus(campus_fs,
                              {"/home/install", "7.2-campus", "i386", 32 * 1024});
  campus.mirror(rd.as_upstream("sdsc"), "rocks/7.2");
  rpm::Package licenses;
  licenses.name = "campus-licenses";
  licenses.evr = rpm::Evr::parse("1.0-1");
  licenses.size_bytes = 2 * 1024 * 1024;
  licenses.files = {"/usr/share/licenses/site"};
  campus.add_local(licenses);
  const auto campus_report = campus.dist(config.files, config.graph);

  std::printf("\nderived campus distribution (Figure 6): %zu packages (+%zu local), "
              "%.1f MB, %.1f s\n",
              campus_report.package_count,
              campus_report.package_count - report.package_count,
              static_cast<double>(campus_report.tree_bytes) / kMB,
              campus_report.build_seconds);
  return 0;
}
