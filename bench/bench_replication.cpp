// Replicated control plane benchmarks (google-benchmark): what WAL shipping
// costs per committed statement, how long a fresh follower needs to catch up
// on an N-node registration history (replication lag), and how long failover
// takes from leader death to the promoted follower answering its first
// kickstart request (DESIGN.md §12, EXPERIMENTS.md replication tables).
//
// The catch-up fixture aborts the whole binary if a synced follower's dump
// ever differs from the leader's — a fast wrong replica is not a result.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "kickstart/server.hpp"
#include "netsim/engine.hpp"
#include "replication/control_plane.hpp"
#include "rpm/synth.hpp"
#include "sqldb/engine.hpp"
#include "support/ip.hpp"
#include "support/strings.hpp"
#include "vfs/filesystem.hpp"

namespace {

using namespace rocks;
using replication::ControlPlane;
using replication::ControlPlaneConfig;
using replication::FollowerConfig;
using strings::cat;

constexpr const char* kDir = "/state/db";
constexpr Ipv4 kFirstIp{10, 255, 255, 254};

Ipv4 node_ip(std::uint64_t serial) {
  return Ipv4(kFirstIp.value() - static_cast<std::uint32_t>(serial));
}

/// One registered compute node, the unit every table below scales in.
void register_node(sqldb::Database& db, std::uint64_t serial) {
  kickstart::insert_node_row(db, Mac(0x00508B000000ULL + serial).to_string(),
                             cat("compute-0-", serial), 2, 0, static_cast<int>(serial),
                             node_ip(serial).to_string());
}

/// Per-statement shipping cost: every iteration commits one registration on
/// the leader and pumps it to `followers` replicas before the next commit —
/// the quorum-ack steady state.
void BM_ShipPerCommit(benchmark::State& state) {
  netsim::Simulator sim;
  vfs::FileSystem disk;
  sqldb::Database db;
  db.open_durable(disk, kDir);
  kickstart::ensure_cluster_schema(db);
  ControlPlane cp(sim);
  cp.lead(db, "leader");
  for (std::int64_t i = 0; i < state.range(0); ++i)
    cp.add_follower(FollowerConfig{.name = cat("replica-", i)});
  cp.pump();
  std::uint64_t serial = 0;
  for (auto _ : state) {
    register_node(db, serial++);
    cp.pump();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  const auto status = cp.status();
  state.counters["shipped_bytes_per_op"] = benchmark::Counter(
      static_cast<double>(status.shipped_bytes) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ShipPerCommit)->Iterations(4096)->Arg(1)->Arg(2)->Arg(4);

/// A committed N-node leader image shared by the catch-up and failover
/// fixtures (built once per N).
struct LeaderImage {
  vfs::FileSystem disk;
  std::string expected;
};

LeaderImage& leader_image(std::uint64_t nodes) {
  static std::map<std::uint64_t, std::unique_ptr<LeaderImage>> images;
  auto& slot = images[nodes];
  if (!slot) {
    slot = std::make_unique<LeaderImage>();
    sqldb::Database db;
    db.open_durable(slot->disk, kDir);
    db.set_wal_group_commit(64);
    kickstart::ensure_cluster_schema(db);
    for (std::uint64_t i = 0; i < nodes; ++i) register_node(db, i);
    db.wal_flush();
    slot->expected = db.dump_state();
  }
  return *slot;
}

/// Replication lag for a cold follower: one pump replays the whole N-node
/// registration history into a fresh replica (the time a just-added
/// follower frontend needs before it can serve).
void BM_FollowerCatchUp(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  LeaderImage& image = leader_image(nodes);
  sqldb::Database leader;
  leader.open_durable(image.disk, kDir);
  for (auto _ : state) {
    state.PauseTiming();
    netsim::Simulator sim;
    ControlPlane cp(sim);
    cp.lead(leader, "leader");
    cp.add_follower(FollowerConfig{.name = "replica-0"});
    state.ResumeTiming();
    cp.pump();
    state.PauseTiming();
    if (cp.follower(0).db().dump_state() != image.expected) {
      std::fprintf(stderr, "FATAL: synced follower diverged from the leader\n");
      std::abort();
    }
    cp.kill_leader();  // detach the sink before `cp` dies and `leader` reruns
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_FollowerCatchUp)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// Failover time: leader death -> epoch bump -> promoted follower answers
/// its first kickstart request from its replayed database. The serving
/// follower (distro mirror + kickstart CGI) is built outside the timed
/// region; the timed region is exactly what an installing node waits
/// through.
void BM_FailoverToFirstKickstart(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  static const rpm::SynthDistro distro =
      rpm::make_redhat_release({.filler_packages = 40});
  LeaderImage& image = leader_image(nodes);
  for (auto _ : state) {
    state.PauseTiming();
    vfs::FileSystem disk;
    disk.copy_tree(image.disk, kDir, kDir);
    sqldb::Database leader;
    leader.open_durable(disk, kDir);
    netsim::Simulator sim;
    ControlPlane cp(sim);
    cp.lead(leader, "frontend-0");
    cp.add_follower(FollowerConfig{.name = "frontend-1"}, &distro);
    cp.pump();
    state.ResumeTiming();

    cp.kill_leader();
    cp.promote();
    benchmark::DoNotOptimize(cp.follower(0).kickstart_server().handle_request(node_ip(0)));

    state.PauseTiming();
    if (!cp.follower(0).leader() || cp.epoch() != 2) {
      std::fprintf(stderr, "FATAL: failover did not elect the follower\n");
      std::abort();
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FailoverToFirstKickstart)
    ->Iterations(3)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
