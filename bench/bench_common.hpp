// Shared helpers for the experiment harnesses in bench/.
//
// Every binary regenerates one table or figure of the paper; they print
// paper-reported values next to simulated ones so the shape comparison is
// immediate. See EXPERIMENTS.md for the full index.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "cluster/cluster.hpp"

namespace rocks::bench {

inline constexpr double kMB = 1024.0 * 1024.0;

/// The two Table I calibrations (see EXPERIMENTS.md):
///  - paper-model: the paper's own stated capacity ("the web server ...
///    should be able to support 7 concurrent reinstallations at full
///    speed"), i.e. 7 MB/s aggregate.
///  - physical: a 100 Mbit NIC at 95% utilization with many streams
///    (11.875 MB/s aggregate) but a measured 7.5 MB/s single-stream rate.
struct Calibration {
  const char* name;
  double aggregate_Bps;
  double per_stream_Bps;
};

inline constexpr Calibration kPaperModel{"paper-model (7 MB/s)", 7.0 * kMB, 7.0 * kMB};
inline constexpr Calibration kPhysical{"physical (95% of 100Mb)", 11.875 * kMB, 7.5 * kMB};

/// A ready-to-reinstall cluster of `nodes` compute nodes under the given
/// HTTP calibration. Uses a reduced contrib tail to keep setup quick; the
/// install payload (225 MB/node) is unaffected by the tail. Returned by
/// pointer because Cluster is intentionally non-movable.
inline std::unique_ptr<cluster::Cluster> make_cluster(std::size_t nodes,
                                                      const Calibration& calibration,
                                                      std::size_t http_servers = 1) {
  cluster::ClusterConfig config;
  config.synth.filler_packages = 60;
  config.frontend.http_capacity = calibration.aggregate_Bps;
  config.frontend.http_per_stream_cap = calibration.per_stream_Bps;
  config.frontend.http_servers = http_servers;
  auto built = std::make_unique<cluster::Cluster>(std::move(config));
  // Pre-integration is not part of the measured reinstall pulses.
  for (std::size_t i = 0; i < nodes; ++i) built->add_node();
  built->integrate_all();
  return built;
}

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  reproduces: %s\n", experiment, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace rocks::bench
