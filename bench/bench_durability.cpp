// Durable-store micro-benchmarks (google-benchmark): what the WAL costs a
// committed statement, what group commit buys back, and how long recovery
// takes at cluster scale (DESIGN.md §11, EXPERIMENTS.md durability tables).
//
// The acceptance bar: synchronous WAL commit within ~2x of the in-RAM
// commit, group commit (batch >= 32) near baseline, and 100/1k/10k-node
// recovery images replayed without divergence — the recovery fixtures
// abort the whole binary if a recovered dump ever differs from the state
// that produced the image.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "sqldb/engine.hpp"
#include "support/ip.hpp"
#include "support/strings.hpp"
#include "vfs/filesystem.hpp"

namespace {

using namespace rocks;
using strings::cat;

constexpr const char* kDir = "/state/db";
constexpr const char* kCreateNodes =
    "CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, mac TEXT, name TEXT, "
    "ip TEXT, membership INT)";

std::string insert_node(std::uint64_t serial) {
  return cat("INSERT INTO nodes (mac, name, ip, membership) VALUES ('",
             Mac(0x00508B000000ULL + serial).to_string(), "', 'compute-0-", serial, "', '",
             Ipv4(Ipv4(10, 255, 255, 254).value() - static_cast<std::uint32_t>(serial))
                 .to_string(),
             "', 2)");
}

/// Baseline: the pre-§11 in-RAM engine, no durability at all.
void BM_CommitNoWal(benchmark::State& state) {
  sqldb::Database db;
  db.execute(kCreateNodes);
  std::uint64_t serial = 0;
  for (auto _ : state) benchmark::DoNotOptimize(db.execute(insert_node(serial++)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CommitNoWal)->Iterations(16384);

/// Synchronous durability: every statement's records hit the vfs before
/// execute() returns (group commit = 1).
void BM_CommitWalSync(benchmark::State& state) {
  vfs::FileSystem disk;
  sqldb::Database db;
  db.open_durable(disk, kDir);
  db.execute(kCreateNodes);
  db.reset_stats();  // the lock counter below measures the insert loop only
  std::uint64_t serial = 0;
  for (auto _ : state) benchmark::DoNotOptimize(db.execute(insert_node(serial++)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["wal_bytes_per_op"] = benchmark::Counter(
      static_cast<double>(db.wal_bytes_written()) / static_cast<double>(state.iterations()));
  state.counters["excl_locks"] = static_cast<double>(db.exclusive_lock_acquisitions());
}
BENCHMARK(BM_CommitWalSync)->Iterations(16384);

/// Group commit: one vfs append per `batch` statements; the registration
/// burst's amortization knob.
void BM_CommitWalGroup(benchmark::State& state) {
  vfs::FileSystem disk;
  sqldb::Database db;
  db.open_durable(disk, kDir);
  db.set_wal_group_commit(static_cast<std::size_t>(state.range(0)));
  db.execute(kCreateNodes);
  std::uint64_t serial = 0;
  for (auto _ : state) benchmark::DoNotOptimize(db.execute(insert_node(serial++)));
  db.wal_flush();  // the barrier a real batch ends with
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["flushes"] = benchmark::Counter(static_cast<double>(db.wal_flushes()));
}
BENCHMARK(BM_CommitWalGroup)->Iterations(16384)->Arg(8)->Arg(32)->Arg(128);

/// Checkpoint cost: serialize + CRC + atomic rename of an N-node store.
/// Zero-pause for readers: the image serializes from a pinned MVCC view,
/// so this now measures only the brief capture/swap critical sections plus
/// the lock-free serialization (bench_mvcc measures the reader-visible
/// pause directly).
void BM_Snapshot(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  vfs::FileSystem disk;
  sqldb::Database db;
  db.open_durable(disk, kDir);
  db.execute(kCreateNodes);
  db.execute("CREATE INDEX nodes_mac ON nodes (mac)");
  for (std::uint64_t i = 0; i < nodes; ++i) db.execute(insert_node(i));
  db.reset_stats();  // separate the snapshot loop from the setup churn
  for (auto _ : state) benchmark::DoNotOptimize(db.snapshot());
}
BENCHMARK(BM_Snapshot)->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

/// A committed N-node store image and the dump every recovery must equal.
struct RecoveryImage {
  vfs::FileSystem disk;
  std::string expected;
};

/// Builds (once per shape) a disk image of N registered nodes: pure WAL, or
/// a snapshot taken at half the registrations with the rest in the WAL tail.
RecoveryImage& recovery_image(std::uint64_t nodes, bool checkpointed) {
  static std::map<std::pair<std::uint64_t, bool>, std::unique_ptr<RecoveryImage>> images;
  auto& slot = images[{nodes, checkpointed}];
  if (!slot) {
    slot = std::make_unique<RecoveryImage>();
    sqldb::Database db;
    db.open_durable(slot->disk, kDir);
    db.set_wal_group_commit(64);
    db.execute(kCreateNodes);
    db.execute("CREATE INDEX nodes_mac ON nodes (mac)");
    for (std::uint64_t i = 0; i < nodes; ++i) {
      db.execute(insert_node(i));
      if (checkpointed && i == nodes / 2) db.snapshot();
    }
    db.wal_flush();
    slot->expected = db.dump_state();
  }
  return *slot;
}

/// The acceptance check: a recovered store must dump byte-identically to
/// the store that wrote the image. Any divergence is a correctness bug, so
/// it kills the benchmark run rather than reporting a fast wrong number.
void require_identical(RecoveryImage& image) {
  sqldb::Database db;
  db.open_durable(image.disk, kDir);
  if (db.dump_state() != image.expected) {
    std::fprintf(stderr, "FATAL: recovered state diverged from pre-crash state\n");
    std::abort();
  }
}

/// Cold-start recovery replaying the whole registration history from the WAL.
void BM_RecoveryWalReplay(benchmark::State& state) {
  auto& image = recovery_image(static_cast<std::uint64_t>(state.range(0)), false);
  for (auto _ : state) {
    sqldb::Database db;
    benchmark::DoNotOptimize(db.open_durable(image.disk, kDir));
  }
  require_identical(image);
}
BENCHMARK(BM_RecoveryWalReplay)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// Recovery bounded by a checkpoint: load the snapshot, replay the tail.
void BM_RecoverySnapshotPlusTail(benchmark::State& state) {
  auto& image = recovery_image(static_cast<std::uint64_t>(state.range(0)), true);
  for (auto _ : state) {
    sqldb::Database db;
    benchmark::DoNotOptimize(db.open_durable(image.disk, kDir));
  }
  require_identical(image);
}
BENCHMARK(BM_RecoverySnapshotPlusTail)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
