// Section 6.3 micro-benchmark: "By running a micro-benchmark that consisted
// of serially downloading all the RPMs a compute node downloads during its
// reinstallation, we found the web server sourced 7-8 MB/s."
//
// Also demonstrates the derived per-node demand: 225 MB / 223 s = 1 MB/s,
// and the paper's capacity model: a 7 MB/s server supports 7 concurrent
// full-speed (1 MB/s) reinstalls.
#include <cstdio>

#include "bench_common.hpp"
#include "netsim/engine.hpp"
#include "netsim/http.hpp"
#include "support/table.hpp"

using namespace rocks;
using namespace rocks::bench;

int main() {
  print_header("bench_http_microbench", "Section 6.3 (serial-download micro-benchmark)");

  // Serial download of one compute node's RPM set, no install pipeline cap.
  {
    netsim::Simulator sim;
    netsim::HttpServer server(sim, "frontend-0", kPhysical.aggregate_Bps);
    server.set_per_stream_cap(kPhysical.per_stream_Bps);
    double done_at = -1;
    server.serve(225.0 * kMB, 0.0, [&] { done_at = sim.now(); });
    sim.run();
    const double rate = 225.0 / done_at;
    std::printf("serial download of 225 MB: %.1f s  ->  server sourced %.1f MB/s "
                "(paper: 7-8 MB/s)\n\n", done_at, rate);
  }

  // Per-node demand during a real install: payload / download+install time.
  std::printf("per-install demand model: 225 MB / 223 s = %.2f MB/s (paper: 1 MB/s)\n\n",
              225.0 / 223.0);

  // Concurrent 1 MB/s flows against a 7 MB/s server: per-flow rate vs N.
  AsciiTable table({"Concurrent installs", "Per-node rate (MB/s)", "Full speed?"});
  for (std::size_t n : {1u, 4u, 7u, 8u, 12u, 16u, 32u}) {
    netsim::Simulator sim;
    netsim::HttpServer server(sim, "frontend-0", 7.0 * kMB);
    std::vector<netsim::FlowId> flows;
    for (std::size_t i = 0; i < n; ++i)
      flows.push_back(server.serve(225.0 * kMB, 1.0 * kMB, nullptr));
    const double rate = server.rate_of(flows[0]) / kMB;
    table.add_row({std::to_string(n), fixed(rate, 2), rate >= 0.999 ? "yes" : "no"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n\"the web server described above should be able to support 7 concurrent\n"
              "reinstallations at full speed\" -- the knee lands exactly at 7.\n");
  return 0;
}
