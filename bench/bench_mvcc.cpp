// MVCC engine benchmarks (google-benchmark): what snapshot-isolation reads
// cost, what they cost *under writers*, and what a checkpoint does to
// reader latency (DESIGN.md §13, EXPERIMENTS.md MVCC tables).
//
// The acceptance bar: mixed-load read p99 within ~2x of the idle read
// baseline, and zero reader pause during checkpoints (a snapshot serializes
// from a pinned view, so reads never wait for the image to be written).
//
// Correctness tripwires run inside the timed loops and abort the whole
// binary rather than report a fast wrong number:
//   - a pinned read view re-read must render byte-identically while
//     writers commit around it (snapshot stability);
//   - on an idle store, a pinned-view read and a plain execute() read must
//     render byte-identically (the two read paths see one state).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sqldb/engine.hpp"
#include "support/strings.hpp"
#include "vfs/filesystem.hpp"

namespace {

using namespace rocks;
using strings::cat;

constexpr std::size_t kRows = 256;
constexpr const char* kScan = "SELECT name, rack FROM nodes ORDER BY id";
constexpr const char* kProbe = "SELECT rack FROM nodes WHERE name = 'node-7'";

void fill_nodes(sqldb::Database& db) {
  db.execute(
      "CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, rack INT)");
  db.execute("CREATE INDEX nodes_name ON nodes (name)");
  for (std::size_t i = 0; i < kRows; ++i)
    db.execute(cat("INSERT INTO nodes (name, rack) VALUES ('node-", i, "', 0)"));
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "FATAL: %s\n", what);
  std::abort();
}

/// One timed read; returns its wall latency in microseconds.
template <typename Fn>
double timed_us(Fn&& read) {
  const auto start = std::chrono::steady_clock::now();
  read();
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
      .count();
}

void report_latencies(benchmark::State& state, std::vector<double> us) {
  std::sort(us.begin(), us.end());
  const auto at = [&us](double p) {
    return us[std::min(us.size() - 1, static_cast<std::size_t>(p * us.size()))];
  };
  state.counters["p50_us"] = at(0.50);
  state.counters["p99_us"] = at(0.99);
  state.counters["max_us"] = us.back();
}

/// Idle baseline: lock-free snapshot reads with no writers anywhere, for
/// both read shapes (0 = indexed probe, the shape BM_ReadUnderWriters
/// times; 1 = ordered scan, the shape BM_ReadDuringCheckpoints times).
/// Also cross-checks the two read paths against each other.
void BM_ReadIdle(benchmark::State& state) {
  sqldb::Database db;
  fill_nodes(db);
  {
    sqldb::ReadView view = db.read_view();
    if (view.execute(kScan).render() != db.execute(kScan).render())
      die("idle pinned-view read diverged from execute() read");
  }
  db.reset_stats();
  const char* query = state.range(0) == 0 ? kProbe : kScan;
  std::vector<double> us;
  us.reserve(1 << 16);
  for (auto _ : state) {
    sqldb::ResultSet rows;
    us.push_back(timed_us([&] { rows = db.execute(query); }));
    benchmark::DoNotOptimize(rows.rows.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  report_latencies(state, std::move(us));
  state.counters["read_views"] = static_cast<double>(db.read_views_opened());
}
BENCHMARK(BM_ReadIdle)->Iterations(4096)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

/// Mixed load: W writer threads churning INSERT/UPDATE/DELETE while the
/// timed thread reads. Every 64th read additionally pins a view, reads
/// twice, and aborts on any byte divergence — snapshot stability measured
/// in the same run that measures latency.
void BM_ReadUnderWriters(benchmark::State& state) {
  sqldb::Database db;
  fill_nodes(db);
  db.reset_stats();
  const auto writer_count = static_cast<std::size_t>(state.range(0));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < writer_count; ++t) {
    writers.emplace_back([&db, &stop, t] {
      for (std::uint64_t op = 0; !stop.load(std::memory_order_relaxed); ++op) {
        db.execute(cat("INSERT INTO nodes (name, rack) VALUES ('w", t, "-", op, "', 1)"));
        db.execute(cat("UPDATE nodes SET rack = rack + 1 WHERE name = 'node-", t, "'"));
        db.execute(cat("DELETE FROM nodes WHERE name = 'w", t, "-", op, "'"));
      }
    });
  }
  std::vector<double> us;
  us.reserve(1 << 16);
  std::uint64_t op = 0;
  for (auto _ : state) {
    sqldb::ResultSet rows;
    us.push_back(timed_us([&] { rows = db.execute(kProbe); }));
    benchmark::DoNotOptimize(rows.rows.data());
    if (++op % 64 == 0) {
      sqldb::ReadView view = db.read_view();
      const std::string first = view.execute(kScan).render();
      if (view.execute(kScan).render() != first)
        die("pinned read view diverged under concurrent writers");
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : writers) thread.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  report_latencies(state, std::move(us));
  const sqldb::MvccStatus status = db.mvcc_status();
  state.counters["reclaimed"] = static_cast<double>(status.versions_reclaimed);
  state.counters["max_chain"] = static_cast<double>(status.max_chain);
}
BENCHMARK(BM_ReadUnderWriters)->Iterations(4096)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

/// The zero-pause claim, measured: a checkpointer thread snapshots a
/// durable store in a loop (with one writer feeding the WAL) while the
/// timed thread reads. p99/max read latency is the reader-visible
/// checkpoint pause; before MVCC this showed the full serialize+write cost.
void BM_ReadDuringCheckpoints(benchmark::State& state) {
  vfs::FileSystem disk;
  sqldb::Database db;
  db.open_durable(disk, "/state/db");
  fill_nodes(db);
  db.reset_stats();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checkpoints{0};
  std::thread checkpointer([&db, &stop, &checkpoints] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)db.snapshot();
      checkpoints.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::thread writer([&db, &stop] {
    for (std::uint64_t op = 0; !stop.load(std::memory_order_relaxed); ++op)
      db.execute(cat("UPDATE nodes SET rack = ", op, " WHERE name = 'node-0'"));
  });
  std::vector<double> us;
  us.reserve(1 << 16);
  for (auto _ : state) {
    sqldb::ResultSet rows;
    us.push_back(timed_us([&] { rows = db.execute(kScan); }));
    benchmark::DoNotOptimize(rows.rows.data());
  }
  stop.store(true, std::memory_order_relaxed);
  checkpointer.join();
  writer.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  report_latencies(state, std::move(us));
  state.counters["checkpoints"] = static_cast<double>(checkpoints.load());
}
BENCHMARK(BM_ReadDuringCheckpoints)->Iterations(4096)->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
