// Health monitoring and the Section 4 recovery ladder: heartbeat
// aggregation, dead-node detection, remote power cycling, and the crash
// cart as the last resort.
#include <cstdio>

#include "monitor/ganglia.hpp"
#include "monitor/recovery.hpp"

using namespace rocks;

int main() {
  std::printf("== health monitoring & the recovery ladder (Section 4) ==\n\n");

  cluster::ClusterConfig config;
  config.synth.filler_packages = 60;
  cluster::Cluster cluster(std::move(config));
  for (int i = 0; i < 6; ++i) cluster.add_node();
  cluster.integrate_all();

  monitor::GangliaMonitor ganglia(cluster);
  ganglia.start();
  cluster.sim().run_until(cluster.sim().now() + 30.0);
  std::printf("steady state:\n%s\n", ganglia.report().c_str());

  // Two failures strike: one node wedges (software), one loses its NIC.
  cluster.node("compute-0-1")->power_off();
  cluster.node("compute-0-4")->inject_hardware_fault();
  cluster.sim().run_until(cluster.sim().now() + 60.0);
  std::printf("after failures:\n%s\n", ganglia.report().c_str());

  // Step 1 of the ladder: remote hard power cycle (forces a reinstall).
  monitor::RecoveryManager recovery(cluster);
  const auto report = recovery.recover(ganglia.dead_nodes());
  std::printf("power-cycled %zu outlet(s): %zu recovered, %zu still dark\n",
              report.power_cycled.size(), report.recovered.size(),
              report.needs_crash_cart.size());

  // Step 2: "If the compute node is still unresponsive, physical
  // intervention is required. For this case, we have a crash cart."
  const auto revived = recovery.crash_cart_visit(report.needs_crash_cart);
  std::printf("crash cart trips: %zu; revived: %zu\n\n", recovery.crash_cart_trips(),
              revived.size());

  cluster.sim().run_until(cluster.sim().now() + 30.0);
  std::printf("after recovery:\n%s\n", ganglia.report().c_str());
  std::printf("every recovered node was *reinstalled*, not repaired -- consistency "
              "restored as a side effect: %s\n",
              cluster.consistent() ? "yes" : "no");
  return 0;
}
