// A chaos drill against a running cluster: arm a fault plan (lost DHCP
// broadcasts, an install-server crash, mid-download connection resets, a
// power flap), reinstall everything, and watch the hardened pipeline drive
// every node back to a known state — the paper's Section 3.2 goal ("the
// software state on each node must be verifiable and consistent") holding
// under fire. Failed installs are escalated through the Section 4 recovery
// ladder by RecoveryManager.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "monitor/recovery.hpp"
#include "netsim/fault.hpp"

using namespace rocks;

int main() {
  std::printf("== chaos drill: reinstall pulse under injected faults ==\n\n");

  cluster::ClusterConfig config;
  config.synth.filler_packages = 60;
  config.frontend.http_servers = 2;
  cluster::Cluster cluster(std::move(config));
  for (int i = 0; i < 8; ++i) cluster.add_node();
  cluster.integrate_all();
  std::printf("integrated 8 compute nodes behind 2 install servers\n");

  netsim::FaultPlan plan;
  plan.dhcp_loss = 0.3;
  plan.http_crashes = {{250.0, 0, 150.0}};  // web-0 dies for 2.5 min
  plan.flow_kills = {{300.0, 1}, {330.0, 1}};
  plan.power_flaps = {{400.0, 3, 45.0}};  // compute-0-3 loses power
  auto& faults = cluster.arm_faults(plan);
  std::printf("armed: 30%% DHCP loss, web-0 crash @250s, 2 resets, 1 power flap\n\n");

  const double start = cluster.sim().now();
  for (auto* node : cluster.nodes()) node->shoot();
  cluster.run_until_stable();
  const double makespan = cluster.sim().now() - start;

  std::printf("pulse complete in %.1f min (clean pulse: ~10.3 min)\n", makespan / 60.0);
  const auto& stats = faults.stats();
  std::printf("faults landed: %llu DISCOVERs dropped, %llu crashes, %llu flows killed, "
              "%llu power flaps\n",
              static_cast<unsigned long long>(stats.discovers_dropped),
              static_cast<unsigned long long>(stats.http_crashes),
              static_cast<unsigned long long>(stats.flows_killed),
              static_cast<unsigned long long>(stats.power_flaps));

  std::printf("\nper-node outcome:\n");
  for (auto* node : cluster.nodes()) {
    std::printf("  %-12s %-9s installs=%d download_retries=%llu watchdog_fires=%llu\n",
                node->hostname().c_str(), std::string(node_state_name(node->state())).c_str(),
                node->install_count(),
                static_cast<unsigned long long>(node->download_retries()),
                static_cast<unsigned long long>(node->watchdog_fires()));
  }

  // Anything that exhausted its budgets gets the Section 4 ladder.
  cluster.disarm_faults();
  monitor::RecoveryManager recovery(cluster);
  const auto revived = recovery.sweep_failed();
  if (!revived.empty()) {
    std::printf("\nrecovery sweep revived %zu failed node(s)\n", revived.size());
  }

  std::printf("\nall nodes running: %s; fingerprints consistent: %s\n",
              [&] { for (auto* n : cluster.nodes()) if (!n->is_running()) return "no";
                    return "yes"; }(),
              cluster.consistent() ? "yes" : "no");
  return 0;
}
