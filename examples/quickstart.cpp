// Quickstart: build a Rocks cluster from bare metal in ~40 lines.
//
// This walks the paper's Figure 1 architecture end to end: a frontend with
// every service, four compute nodes integrated by insert-ethers, and the
// management loop (status, shoot-node, consistency).
#include <cstdio>

#include "cluster/cluster.hpp"
#include "tools/cluster_tools.hpp"

using namespace rocks;

int main() {
  std::printf("== rocks++ quickstart ==\n\n");

  // 1. The frontend installs itself from the CD: database, DHCP, HTTP,
  //    rocks-dist distribution, kickstart CGI.
  cluster::ClusterConfig config;
  config.synth.filler_packages = 60;
  cluster::Cluster cluster(std::move(config));
  auto& frontend = cluster.frontend();
  std::printf("frontend %s up: %zu packages in distribution, %zu services\n",
              frontend.config().name.c_str(), frontend.distribution().package_count(),
              frontend.services().service_names().size());

  // 2. Rack four compute nodes and run insert-ethers while they boot.
  for (int i = 0; i < 4; ++i) cluster.add_node();
  cluster.integrate_all();
  std::printf("integrated %d nodes in %.1f simulated minutes\n\n",
              cluster.insert_ethers().nodes_inserted(), cluster.sim().now() / 60.0);

  // 3. Figure 1 inventory: what the cluster looks like.
  tools::ClusterTools tools(cluster);
  std::printf("%s\n", tools.status_report().c_str());
  std::printf("generated /etc/hosts:\n%s\n", frontend.fs().read_file("/etc/hosts").c_str());

  // 4. The management tool: reinstall a node back to a known state.
  cluster.shoot_node("compute-0-2");
  cluster.run_until_stable();
  std::printf("compute-0-2 reinstalled in %.1f minutes; cluster consistent: %s\n",
              cluster.node("compute-0-2")->last_install_duration() / 60.0,
              cluster.consistent() ? "yes" : "no");
  return 0;
}
