// Figures 5 & 6: rocks-dist gathering and the object-oriented distribution
// hierarchy. "This allows a user, such as a university campus, to add local
// software packages to Rocks and have all departments build clusters based
// off the campus' distribution."
#include <cstdio>

#include "kickstart/defaults.hpp"
#include "rocksdist/rocksdist.hpp"
#include "rpm/synth.hpp"

using namespace rocks;

namespace {

rpm::Package local_rpm(const char* name, const char* evr, double mb) {
  rpm::Package pkg;
  pkg.name = name;
  pkg.evr = rpm::Evr::parse(evr);
  pkg.size_bytes = static_cast<std::uint64_t>(mb * 1024 * 1024);
  pkg.origin = rpm::Origin::kLocal;
  pkg.files = {std::string("/usr/bin/") + name};
  return pkg;
}

void report(const char* who, const rocksdist::DistReport& r) {
  std::printf("%-22s %5zu packages, %5zu symlinks, %6.1f MB tree, built in %4.1f s\n", who,
              r.package_count, r.symlink_count,
              static_cast<double>(r.tree_bytes) / (1024.0 * 1024.0), r.build_seconds);
}

}  // namespace

int main() {
  std::printf("== campus distribution hierarchy (Figures 5-6) ==\n\n");

  const rpm::SynthDistro redhat = rpm::make_redhat_release();
  const auto config = kickstart::make_default_configuration(redhat);

  // Level 0: SDSC gathers Red Hat + updates + Rocks local software.
  vfs::FileSystem sdsc_fs;
  rocksdist::RocksDist sdsc(sdsc_fs);
  const auto mirror = sdsc.mirror(redhat.repo, "redhat/7.2");
  std::printf("sdsc mirrored %zu packages (%.0f MB) from the Red Hat master\n",
              mirror.packages_fetched,
              static_cast<double>(mirror.bytes_fetched) / (1024.0 * 1024.0));
  const auto updates = rpm::make_update_stream(redhat);
  rpm::Repository errata("updates");
  for (const auto& u : updates) errata.add(u.package);
  sdsc.mirror(errata, "updates/7.2");
  report("sdsc (NPACI Rocks)", sdsc.dist(config.files, config.graph));

  // Level 1: the campus mirrors SDSC's *distribution* and adds site RPMs.
  vfs::FileSystem campus_fs;
  rocksdist::RocksDist campus(campus_fs, {"/home/install", "7.2-ucsd", "i386", 32 * 1024});
  campus.mirror(sdsc.as_upstream("rocks"), "rocks/7.2");
  campus.add_local(local_rpm("ucsd-licenses", "1.0-1", 2.0));
  campus.add_local(local_rpm("ucsd-auth", "3.2-4", 0.5));
  report("ucsd campus", campus.dist(config.files, config.graph));

  // Level 2: a department inherits the campus distribution.
  vfs::FileSystem dept_fs;
  rocksdist::RocksDist dept(dept_fs, {"/home/install", "7.2-chem", "i386", 32 * 1024});
  dept.mirror(campus.as_upstream("ucsd"), "ucsd/7.2");
  dept.add_local(local_rpm("gamess", "2001.5-1", 45.0));
  dept.add_local(local_rpm("nwchem", "4.0-2", 60.0));
  const auto dept_report = dept.dist(config.files, config.graph);
  report("chemistry dept", dept_report);

  std::printf("\nthe department's cluster installs Red Hat %s + campus auth + GAMESS +\n"
              "NWChem from one self-consistent tree; every layer re-runs the identical\n"
              "rocks-dist process (\"repeatability\", Section 6.2.2).\n",
              redhat.release_version.c_str());
  std::printf("\nchemistry distribution carries: gamess %s, nwchem %s, ucsd-auth %s\n",
              dept.distribution().newest("gamess")->evr.to_string().c_str(),
              dept.distribution().newest("nwchem")->evr.to_string().c_str(),
              dept.distribution().newest("ucsd-auth")->evr.to_string().c_str());
  return 0;
}
