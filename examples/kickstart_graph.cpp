// The kickstart XML engine, end to end (paper Section 6.1, Figures 2-4):
// parse the paper's Figure 2 node file, show the default graph and its
// Figure 4 DOT rendering, walk it for a compute appliance, and print the
// generated Red Hat-compliant kickstart file.
#include <cstdio>

#include "kickstart/defaults.hpp"
#include "kickstart/generator.hpp"
#include "rpm/synth.hpp"
#include "support/strings.hpp"

using namespace rocks;
using namespace rocks::kickstart;

int main() {
  std::printf("== kickstart graph walkthrough ==\n\n");

  // Figure 2: the DHCP-server node file, parsed by our XML engine.
  const NodeFile dhcp = NodeFile::parse("dhcp-server", figure2_dhcp_server_xml());
  std::printf("Figure 2 node file '%s': \"%s\"\n  packages:", dhcp.name().c_str(),
              dhcp.description().c_str());
  for (const auto& pkg : dhcp.packages()) std::printf(" %s", pkg.name.c_str());
  std::printf("\n  post script: %zu bytes of shell\n\n", dhcp.posts()[0].body.size());

  // The default configuration that ships on the CD.
  const rpm::SynthDistro distro = rpm::make_redhat_release();
  const DefaultConfiguration config = make_default_configuration(distro);
  std::printf("default graph: %zu node files, %zu edges, appliances:",
              config.files.size(), config.graph.edges().size());
  for (const auto& appliance : config.graph.appliances())
    std::printf(" %s", appliance.c_str());
  std::printf("\n\n");

  // Figure 4: the graph visualization (pipe into `dot -Tpng`).
  std::printf("Figure 4 (Graphviz DOT):\n%s\n", config.graph.to_dot().c_str());

  // The traversal the paper narrates: compute -> mpi -> c-development -> ...
  std::printf("compute appliance traversal: %s\n\n",
              strings::join(config.graph.traverse("compute"), " -> ").c_str());

  // What the CGI script returns to an installing compute node.
  NodeConfig nc;
  nc.hostname = "compute-0-0";
  nc.appliance = "compute";
  nc.ip = Ipv4(10, 255, 255, 254);
  nc.frontend_ip = Ipv4(10, 1, 1, 1);
  nc.distribution_url = "http://10.1.1.1/install/rocks-dist";
  const Generator generator(config.files, config.graph, &distro.repo);
  const std::string text = generator.generate_text(nc);
  std::printf("generated kickstart file (%zu bytes):\n", text.size());
  // Print the header and the first packages; the full file is long.
  std::size_t lines = 0;
  for (const auto& line : strings::split(text, '\n')) {
    std::printf("  %s\n", line.c_str());
    if (++lines == 28) {
      std::printf("  ... (%zu more lines)\n", strings::split(text, '\n').size() - lines);
      break;
    }
  }
  return 0;
}
