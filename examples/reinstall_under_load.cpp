// Section 5's rolling upgrade, but in production (DESIGN.md §16): the
// batch queue stays full while every compute node is reinstalled, and the
// upgrade "does not disturb any running applications".
//
// The walkthrough drives the fault-tolerant scheduler attached to a live
// cluster through one complete upgrade under load:
//
//   1. A stream of parallel user jobs saturates the cluster.
//   2. reinstall-all starts a rolling upgrade: busy nodes *drain* (their
//      jobs run to completion, then the node PXE-boots into kickstart),
//      bounded to `reinstall_wave` nodes at a time, gated on the health
//      tree's alive fraction.
//   3. Mid-upgrade, chaos: several draining nodes lose power. The event
//      spine (kNodeState off -> scheduler) requeues their jobs under the
//      retry budget; the health dip parks new reinstall waves until the
//      machine room powers the victims back on.
//   4. Everything converges: every node is freshly installed, fingerprints
//      are consistent, and the accounting ledger shows every job completed
//      exactly once — zero cancelled by the upgrade.
//
//   reinstall_under_load [--nodes N] [--jobs N]   (defaults 64 / 240)
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "batch/accounting.hpp"
#include "batch/scheduler.hpp"
#include "cluster/cluster.hpp"
#include "monitor/ganglia.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

using namespace rocks;
using batch::Accounting;
using batch::AccountingTotals;
using batch::JobSpec;
using batch::NodeLife;
using batch::Scheduler;
using batch::SchedulerConfig;

namespace {

void die(const char* what) {
  std::fprintf(stderr, "reinstall_under_load: FAILED: %s\n", what);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t node_count = 64;
  std::size_t job_count = 240;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc)
      node_count = static_cast<std::size_t>(std::atoll(argv[++i]));
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      job_count = static_cast<std::size_t>(std::atoll(argv[++i]));
  }
  if (node_count < 16) node_count = 16;

  std::printf("== rolling reinstall under load: %zu nodes, %zu jobs ==\n\n", node_count,
              job_count);

  cluster::ClusterConfig cluster_config;
  cluster_config.synth.filler_packages = 20;
  cluster::Cluster cluster(std::move(cluster_config));
  for (std::size_t i = 0; i < node_count; ++i) cluster.add_node();
  cluster.integrate_all();
  monitor::GangliaMonitor ganglia(cluster);
  ganglia.start();

  SchedulerConfig config;
  config.reinstall_wave = 8;
  config.min_healthy_fraction = 0.85;  // upgrade waves park below this
  Scheduler sched(cluster.frontend().db(), cluster.sim(), config);
  sched.attach(cluster);
  sched.resume();
  std::printf("scheduler attached: queue rides the frontend WAL, wave cap %zu, health "
              "floor %.2f\n",
              config.reinstall_wave, config.min_healthy_fraction);

  // 1. Saturate: a stream of 1-3 node jobs, 100-400s walltimes.
  Rng rng(0x5EC5);
  std::vector<JobSpec> specs;
  for (std::size_t j = 0; j < job_count; ++j) {
    JobSpec spec;
    spec.name = strings::cat("prod-", j);
    spec.nodes = 1 + rng.next_below(3);
    spec.walltime_seconds = 100.0 + static_cast<double>(rng.next_below(300));
    specs.push_back(spec);
  }
  sched.submit_batch(specs);
  netsim::Simulator& sim = cluster.sim();
  sim.run_until(sim.now() + 30.0);
  std::printf("workload: %zu jobs queued, %zu running, %zu nodes idle\n\n", sched.queued_count(),
              sched.running_count(), sched.idle_nodes());
  std::printf("%s\n", sched.qstat(8).c_str());

  // 2. The upgrade: reinstall every node, rolling.
  sched.request_reinstall_all();
  std::size_t draining = 0, reinstalling = 0, pending = 0;
  for (cluster::Node* node : cluster.nodes()) {
    switch (*sched.node_life(node->hostname())) {
      case NodeLife::kDraining: ++draining; break;
      case NodeLife::kReinstalling: ++reinstalling; break;
      case NodeLife::kPendingReinstall: ++pending; break;
      default: break;
    }
  }
  std::printf("reinstall-all at t=%.0f: %zu draining (jobs keep running), %zu in wave 1, "
              "%zu parked behind the wave cap\n",
              sim.now(), draining, reinstalling, pending);
  if (sched.stats().requeued != 0) die("the reinstall request preempted a running job");

  // 3. Chaos mid-upgrade: draining nodes lose power. Their jobs requeue
  // through the event spine; the health dip parks new waves.
  sim.run_until(sim.now() + 60.0);
  std::vector<std::string> victims;
  for (cluster::Node* node : cluster.nodes()) {
    if (victims.size() == 8) break;
    if (*sched.node_life(node->hostname()) == NodeLife::kDraining)
      victims.push_back(node->hostname());
  }
  if (victims.empty()) die("no draining nodes to kill — the workload never saturated");
  for (const std::string& victim : victims) cluster.node(victim)->power_off();
  const double chaos_at = sim.now();
  sim.run_until(sim.now() + 60.0);
  std::printf("chaos at t=%.0f: %zu draining nodes lost power; %llu jobs requeued under "
              "their retry budgets\n",
              chaos_at, victims.size(),
              static_cast<unsigned long long>(sched.stats().requeued));
  if (sched.stats().requeued == 0) die("node deaths requeued nothing through the spine");

  // The machine room swaps the PSUs and hard-cycles the victims: per the
  // paper's footnote a hard power cycle boots into installation mode, so
  // they come back freshly upgraded — the lost wave slot costs nothing.
  // A victim whose shared job already released it may be power-cycling
  // through its own reinstall wave — leave those alone.
  for (const std::string& victim : victims)
    if (cluster.node(victim)->state() == cluster::NodeState::kOff)
      cluster.node(victim)->hard_power_cycle();

  // 4. Run the upgrade to convergence.
  const std::size_t wave_target = node_count - victims.size();
  const double deadline = sim.now() + 40000.0;
  while (true) {
    const bool upgraded = sched.stats().reinstalls_finished >= wave_target;
    bool all_running = true;
    for (cluster::Node* node : cluster.nodes())
      if (!node->is_running()) { all_running = false; break; }
    if (upgraded && all_running && sched.live_count() == 0) break;
    if (sim.now() >= deadline) die("upgrade did not converge in 40000 sim-seconds");
    sim.run_until(sim.now() + 60.0);
  }
  std::printf("converged at t=%.0f: %llu wave reinstalls + %zu power-cycle installs, "
              "%llu drains\n\n",
              sim.now(), static_cast<unsigned long long>(sched.stats().reinstalls_finished),
              victims.size(), static_cast<unsigned long long>(sched.stats().drains_started));

  // The operator's views: sacct over the durable ledger.
  std::printf("%s\n", Accounting::report(sched.db(), 8).c_str());

  // 5. The claims, asserted.
  const AccountingTotals totals = Accounting::totals(sched.db());
  if (totals.completed + totals.cancelled != job_count) die("jobs missing from the ledger");
  if (totals.duplicate_ids != 0) die("a job was accounted twice");
  if (totals.cancelled != 0) die("the upgrade cancelled jobs — the retry budget should cover");
  bool deviant = false;
  for (cluster::Node* node : cluster.nodes())
    if (node->install_count() != 2) {
      deviant = true;
      const bool was_victim =
          std::find(victims.begin(), victims.end(), node->hostname()) != victims.end();
      std::fprintf(stderr, "DBG %s install_count=%d life=%d victim=%d\n",
                   node->hostname().c_str(), node->install_count(),
                   static_cast<int>(*sched.node_life(node->hostname())), was_victim ? 1 : 0);
    }
  if (deviant) die("a node missed its reinstall (or got an extra one)");
  if (!cluster.consistent()) die("software fingerprints diverged after the upgrade");
  std::set<std::string> triggers;
  for (const auto& status : cluster.triggers().list()) triggers.insert(status.spec.name);
  if (!triggers.contains("sched-node-down") || !triggers.contains("sched-health-wave"))
    die("the scheduler's durable triggers are missing");

  std::printf("every node freshly installed (install_count == 2), fingerprints consistent\n");
  std::printf("ledger: %llu completed, 0 cancelled, 0 duplicates — no application "
              "disturbed\n",
              static_cast<unsigned long long>(totals.completed));
  std::printf("\nreinstall under load PASSED\n");
  return 0;
}
