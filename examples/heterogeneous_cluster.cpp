// Heterogeneity from one XML framework (paper Sections 3.1 and 6.1): "one
// XML graph file supports the dynamic kickstart file generation for three
// processor types ... three storage types ... and two network types". Here
// a user extends the stock configuration with a brand-new appliance type —
// a visualization node — by writing one node file, two graph edges, and two
// database rows. No installer code changes.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "support/strings.hpp"

using namespace rocks;

int main() {
  std::printf("== heterogeneous appliances from one graph ==\n\n");

  cluster::ClusterConfig config;
  config.synth.filler_packages = 60;
  cluster::Cluster cluster(std::move(config));
  auto& frontend = cluster.frontend();

  // --- the user's customization (Section 6.1 footnote: "Users can modify
  // (or add) a node or graph file to tailor the cluster to their needs") ---
  kickstart::NodeFile viz("viz");
  viz.set_description("Tiled-display visualization node");
  viz.add_package("XFree86-libs");
  viz.add_package("xterm");
  viz.add_post("echo 'display wall member @HOSTNAME@' > /etc/viz.conf\n");
  frontend.node_files().add(viz);
  frontend.graph().add_edge("viz-node", "base");
  frontend.graph().add_edge("viz-node", "viz");
  // A root appliance needs its own (possibly empty) node file.
  frontend.node_files().add(kickstart::NodeFile("viz-node"));
  frontend.db().execute(
      "INSERT INTO appliances (name, graph_root) VALUES ('viz', 'viz-node')");
  frontend.db().execute(
      "INSERT INTO memberships (name, appliance, compute) VALUES ('Viz', 7, 'no')");
  frontend.rebuild_distribution();

  // --- integrate a mixed rack: two compute nodes, one NFS, one viz --------
  for (int i = 0; i < 2; ++i) cluster.add_node();
  cluster.integrate_all();
  cluster.insert_ethers().set_membership(7, "nfs");
  cluster.add_node();
  cluster.integrate_all();
  const auto viz_membership = cluster.frontend().db().execute(
      "SELECT id FROM memberships WHERE name = 'Viz'");
  cluster.insert_ethers().set_membership(
      static_cast<int>(viz_membership.rows[0][0].as_int()), "viz");
  cluster.add_node();
  cluster.integrate_all();

  // --- every appliance got its own software from the same framework -------
  for (const char* name : {"compute-0-0", "nfs-0-0", "viz-0-0"}) {
    cluster::Node* node = cluster.node(name);
    std::printf("%-12s %3zu packages  myrinet:%s  nfs-server:%s  X11:%s\n", name,
                node->rpmdb().package_count(),
                node->rpmdb().installed("gm-driver") ? "yes" : "no ",
                node->rpmdb().installed("nfs-utils") ? "yes" : "no ",
                node->rpmdb().installed("XFree86-libs") ? "yes" : "no ");
  }

  cluster::Node* viz_node = cluster.node("viz-0-0");
  std::printf("\nviz-0-0 localized config: %s",
              viz_node->fs()
                  .read_file("/etc/rc.d/rocks-post.d/01-viz")
                  .c_str());
  std::printf("\ngraph appliances now: %s\n",
              strings::join(frontend.graph().appliances(), ", ").c_str());
  return 0;
}
