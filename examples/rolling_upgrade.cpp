// Section 5's production workflow with the batch system in the loop:
// "the production system can be upgraded by submitting a 'reinstall
// cluster' job to Maui, as not to disturb any running applications. Once
// the reinstallation is complete, the next job will have a known,
// consistent software base."
#include <cstdio>

#include "batch/pbs.hpp"
#include "batch/rexec.hpp"
#include "cluster/cluster.hpp"

using namespace rocks;

int main() {
  std::printf("== rolling upgrade through the PBS/Maui queue ==\n\n");

  cluster::ClusterConfig config;
  config.synth.filler_packages = 60;
  cluster::Cluster production(std::move(config));
  for (int i = 0; i < 8; ++i) production.add_node();
  production.integrate_all();
  batch::PbsServer pbs(production);

  // Production is busy: two parallel applications in flight.
  const auto gamess = pbs.submit({"gamess", batch::JobKind::kUser, 4, 1800.0});
  const auto amber = pbs.submit({"amber", batch::JobKind::kUser, 3, 900.0});
  pbs.schedule();

  // The administrator validated this month's errata on the test cluster;
  // now the production upgrade goes in *as a job*.
  const auto errata = rpm::make_update_stream(production.distro());
  rpm::Repository updates("validated-errata");
  for (const auto& update : errata)
    if (update.day <= 30) updates.add(update.package);
  production.frontend().apply_updates(updates);
  const auto reinstall = pbs.submit({"reinstall-cluster", batch::JobKind::kReinstall, 0, 0.0});

  // One more job submitted behind the upgrade.
  const auto next = pbs.submit({"nwchem", batch::JobKind::kUser, 8, 600.0});
  pbs.drain();

  std::printf("%s\n", pbs.qstat().c_str());
  std::printf("gamess ran %.0f s uninterrupted (walltime 1800)\n",
              pbs.job(gamess).completed_at - pbs.job(gamess).started_at);
  std::printf("amber ran %.0f s uninterrupted (walltime 900)\n",
              pbs.job(amber).completed_at - pbs.job(amber).started_at);
  std::printf("reinstall-cluster finished at t=%.0f s; every node now runs the "
              "updated software\n",
              pbs.job(reinstall).completed_at);
  std::printf("nwchem (the \"next job\") started at t=%.0f s on a consistent base: %s\n",
              pbs.job(next).started_at, production.consistent() ? "yes" : "no");

  // And REXEC for the interactive side (Section 4.1).
  batch::Rexec rexec(production);
  const auto run = rexec.launch({"compute-0-0", "compute-0-1"}, "mpirun -np 2 ring", 120.0);
  production.sim().run_until(production.sim().now() + 200.0);
  std::printf("\nrexec run captured %zu stdout lines from 2 nodes, exit codes 0/0\n",
              rexec.processes(run)[0].stdout_lines.size() +
                  rexec.processes(run)[1].stdout_lines.size());
  return 0;
}
