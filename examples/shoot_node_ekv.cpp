// Figure 7: shoot-node and eKV. "Shoot-node ... instructs a compute node to
// reboot itself into installation mode. It monitors the node's progress and
// pops open an xterm window which displays the status of the Red Hat
// Kickstart installation" — here the "xterm" is stdout, fed live by the
// eKV watcher callback.
#include <cstdio>

#include "cluster/cluster.hpp"

using namespace rocks;

int main() {
  std::printf("== shoot-node + eKV (Figure 7) ==\n\n");

  cluster::ClusterConfig config;
  config.synth.filler_packages = 60;
  cluster::Cluster cluster(std::move(config));
  cluster.add_node();
  cluster.integrate_all();
  cluster::Node* node = cluster.node("compute-0-0");

  // Attach the "xterm": every eKV line the installer emits appears here.
  std::printf("$ shoot-node compute-0-0\n");
  node->ekv().attach([](const cluster::EkvLine& line) {
    std::printf("  [eKV %7.1fs] %s\n", line.time, line.text.c_str());
  });
  node->shoot();
  cluster.run_until_stable();

  // The Figure 7 screen as telnet would show it.
  std::printf("\nfinal eKV screen:\n%s\n", node->ekv().screen().c_str());
  std::printf("reinstall took %.1f minutes; non-root partitions preserved: %s\n",
              node->last_install_duration() / 60.0,
              node->fs().is_directory("/state/partition1") ? "yes" : "no");
  return 0;
}
