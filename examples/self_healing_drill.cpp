// The self-healing drill (DESIGN.md §15): chaos kills 32 nodes at 10k-node
// scale, and nobody pages an operator.
//
// The loop under test is the whole event spine end to end:
//
//   power loss -> heartbeats stop -> the rollup tree's leaf declares the
//   node dead (kNodeDown) -> the durable node-down trigger fires its
//   "reinstall" action -> the cluster drives the node through the same
//   path shoot-node takes (PDU power cycle, PXE, kickstart) -> the node
//   comes back kRunning -> heartbeats resume (kNodeUp).
//
// No shoot-node, no recovery sweep, no crash cart: the assertions at the
// end count zero manual interventions. A second act crashes the frontend's
// durable store mid-drill and proves the trigger table recovers with
// byte-identical firing accounting against a never-crashed shadow.
//
//   self_healing_drill [--nodes N]   (default 10000; smaller is faster)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cluster/cluster.hpp"
#include "monitor/ganglia.hpp"
#include "sqldb/engine.hpp"
#include "support/strings.hpp"
#include "vfs/filesystem.hpp"

using namespace rocks;

namespace {

void die(const char* what) {
  std::fprintf(stderr, "self_healing_drill: FAILED: %s\n", what);
  std::exit(1);
}

/// Act 2: the same trigger spec and event sequence, once straight through
/// (the shadow) and once with a crash after the first half — recovered
/// state must keep firing with identical durable accounting.
void frontend_crash_act() {
  std::printf("\n== act 2: trigger state survives a frontend crash ==\n");
  events::TriggerSpec spec;
  spec.name = "flappy-down";
  spec.event = events::EventType::kNodeDown;
  spec.rate_limit = 25.0;
  const auto feed = [](events::EventBus& bus, double from, double to) {
    for (double t = from; t < to; t += 10.0)
      bus.publish({events::EventType::kNodeDown, "compute-3-7", "silent", 0.0, t, 0});
  };

  vfs::FileSystem shadow_disk;
  sqldb::Database shadow_db;
  shadow_db.open_durable(shadow_disk, "/var/lib/rocks");
  events::EventBus shadow_bus;
  events::TriggerEngine shadow(shadow_db, shadow_bus);
  shadow.add(spec);
  feed(shadow_bus, 0.0, 200.0);

  vfs::FileSystem disk;
  {
    sqldb::Database db;
    db.open_durable(disk, "/var/lib/rocks");
    events::EventBus bus;
    events::TriggerEngine engine(db, bus);
    engine.add(spec);
    feed(bus, 0.0, 100.0);
    std::printf("  crash: frontend dies mid-sequence (%llu firings so far on the WAL)\n",
                static_cast<unsigned long long>(engine.firings()));
    // No clean shutdown — scope exit is the power cut.
  }
  sqldb::Database recovered_db;
  recovered_db.open_durable(disk, "/var/lib/rocks");
  events::EventBus recovered_bus;
  events::TriggerEngine recovered(recovered_db, recovered_bus);
  if (recovered.list().size() != 1) die("recovered engine lost its trigger row");
  feed(recovered_bus, 100.0, 200.0);

  const auto want = shadow.list().front();
  const auto got = recovered.list().front();
  std::printf("  recovered vs shadow: fired %llu/%llu, suppressed %llu/%llu, "
              "last fired t=%.1f/%.1f\n",
              static_cast<unsigned long long>(got.fired),
              static_cast<unsigned long long>(want.fired),
              static_cast<unsigned long long>(got.suppressed),
              static_cast<unsigned long long>(want.suppressed), got.last_fired,
              want.last_fired);
  if (got.fired != want.fired || got.suppressed != want.suppressed ||
      got.last_fired != want.last_fired)
    die("recovered firing accounting diverged from the shadow");
  if (recovered_db.dump_state() != shadow_db.dump_state())
    die("recovered trigger table is not byte-identical to the shadow");
  std::printf("  byte-identical: recovered database state == shadow database state\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t node_count = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc)
      node_count = static_cast<std::size_t>(std::atoll(argv[++i]));
  }
  constexpr std::size_t kVictims = 32;
  if (node_count < 2 * kVictims) node_count = 2 * kVictims;

  std::printf("== self-healing drill: %zu nodes, %zu chaos kills, zero operators ==\n\n",
              node_count, kVictims);

  cluster::ClusterConfig config;
  config.synth.filler_packages = 60;
  config.frontend.http_servers = 8;
  config.integration_stagger = 0.25;  // positions bound serially all the same
  cluster::Cluster cluster(std::move(config));

  // Integrate in waves of 512, the way racks come up in a real machine
  // room: 10k nodes installing at once would starve each other below the
  // install watchdog on 8 servers (and no operator brings up ten thousand
  // machines in one power-on anyway).
  constexpr std::size_t kWave = 512;
  for (std::size_t integrated = 0; integrated < node_count;) {
    const std::size_t batch = std::min(kWave, node_count - integrated);
    for (std::size_t i = 0; i < batch; ++i) cluster.add_node();
    cluster.integrate_all();
    integrated += batch;
  }
  std::printf("integrated %zu compute nodes behind 8 install servers "
              "(waves of %zu)\n",
              node_count, kWave);

  monitor::GangliaMonitor ganglia(cluster);
  ganglia.start();

  // The self-healing policy is one durable row: node goes down -> reinstall
  // it. The rate limit is per-trigger spacing, so a mass failure needs it
  // off (32 concurrent deaths must all fire).
  events::TriggerSpec heal;
  heal.name = "auto-heal-down";
  heal.event = events::EventType::kNodeDown;
  heal.subject = "compute-*";
  heal.action = "reinstall";
  cluster.triggers().add(heal);
  std::printf("armed trigger: kNodeDown compute-* -> reinstall (durable row id persists "
              "in the frontend db)\n");

  // Settle into monitored steady state.
  cluster.sim().run_until(cluster.sim().now() + 60.0);
  if (!ganglia.dead_nodes().empty()) die("steady state has dead nodes before chaos");

  // Chaos: 32 machines across different racks lose power, silently. Nothing
  // restores them — no flap, no scheduled recovery, no operator watching.
  const std::size_t stride = node_count / kVictims;
  auto nodes = cluster.nodes();
  for (std::size_t v = 0; v < kVictims; ++v) nodes[v * stride]->power_off();
  std::printf("chaos: %zu nodes (every %zuth) lost power at t=%.0f\n", kVictims, stride,
              cluster.sim().now());

  // Let the spine work: silence -> kNodeDown -> trigger -> reinstall ->
  // kRunning. Poll only to know when to stop the clock.
  const double chaos_at = cluster.sim().now();
  const double deadline = chaos_at + 7200.0;
  while (true) {
    bool all_running = true;
    for (auto* node : nodes)
      if (!node->is_running()) { all_running = false; break; }
    if (all_running) break;
    if (cluster.sim().now() >= deadline) die("cluster did not reconverge within 2 sim-hours");
    cluster.sim().run_until(cluster.sim().now() + 30.0);
  }
  const double healed_in = cluster.sim().now() - chaos_at;

  std::printf("reconverged: every node kRunning %.1f sim-minutes after the kill\n",
              healed_in / 60.0);
  std::printf("  trigger firings: %llu, auto-reinstalls driven: %zu, manual shoot-node "
              "calls: 0, recovery sweeps: 0\n",
              static_cast<unsigned long long>(cluster.triggers().firings()),
              cluster.auto_reinstalls());
  const auto status = cluster.triggers().list().front();
  std::printf("  durable accounting: trigger '%s' fired %llu (last t=%.1f)\n",
              status.spec.name.c_str(), static_cast<unsigned long long>(status.fired),
              status.last_fired);

  if (cluster.auto_reinstalls() < kVictims) die("fewer auto-reinstalls than victims");
  if (cluster.triggers().firings() < kVictims) die("fewer trigger firings than victims");
  if (!ganglia.dead_nodes().empty()) die("monitor still reports dead nodes");
  if (!cluster.consistent()) die("software fingerprints diverged after healing");
  std::printf("  fingerprints consistent after healing: yes (reinstall, not repair)\n");

  frontend_crash_act();

  std::printf("\nself-healing drill PASSED\n");
  return 0;
}
