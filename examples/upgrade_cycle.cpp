// The Section 5 production-upgrade workflow: "After the updates are
// validated on a small test cluster, the production system can be upgraded
// by submitting a 'reinstall cluster' job to Maui ... Once the
// reinstallation is complete, the next job will have a known, consistent
// software base."
#include <cstdio>

#include "cluster/cluster.hpp"
#include "rpm/synth.hpp"

using namespace rocks;

int main() {
  std::printf("== production upgrade cycle (Section 5) ==\n\n");

  cluster::ClusterConfig config;
  config.synth.filler_packages = 60;
  cluster::Cluster production(std::move(config));
  for (int i = 0; i < 8; ++i) production.add_node();
  production.integrate_all();
  std::printf("production cluster: 8 compute nodes, consistent: %s\n\n",
              production.consistent() ? "yes" : "no");

  // A month of Red Hat errata arrives (the Section 6.2.1 cadence).
  const auto stream = rpm::make_update_stream(production.distro());
  rpm::Repository errata("month-1");
  int security = 0;
  for (const auto& update : stream) {
    if (update.day > 30) break;
    errata.add(update.package);
    if (update.package.security_fix) ++security;
  }
  std::printf("month of errata: %zu updated packages, %d security fixes\n",
              errata.package_count(), security);

  // Which production nodes are now stale?
  const auto* node = production.node("compute-0-0");
  const auto report = production.frontend().apply_updates(errata);
  std::printf("rocks-dist rebuilt the distribution: %zu packages, %zu stale versions "
              "dropped, %.1f s\n",
              report.package_count, report.dropped_stale, report.build_seconds);
  const auto stale = node->rpmdb().stale_against(production.frontend().distribution());
  std::printf("compute-0-0 is running %zu stale packages\n\n", stale.size());

  // The Maui "reinstall cluster" job: every node, concurrently, between
  // user jobs.
  const double makespan = production.reinstall_all();
  std::printf("reinstall-cluster job: all 8 nodes back in %.1f minutes\n", makespan / 60.0);
  std::printf("stale packages on compute-0-0 after upgrade: %zu\n",
              node->rpmdb().stale_against(production.frontend().distribution()).size());
  std::printf("cluster consistent: %s -- the next job sees a known software base\n",
              production.consistent() ? "yes" : "no");
  return 0;
}
